package parser

import (
	"strings"
	"testing"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("test.java", src)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, src)
	}
	return f
}

const demo = `
package weka.core;

import java.util.List;
import weka.core.matrix.*;

public class Utils extends Base {
	public static final int MAX = 100;
	private double sum = 0.0;
	int a, b = 2;

	public Utils(int a) {
		this.sum = a;
	}

	public static int clamp(int v, int lo, int hi) {
		if (v < lo) {
			return lo;
		} else if (v > hi) {
			return hi;
		}
		return v;
	}

	double mean(double[] xs) throws ArithmeticException {
		double s = 0.0;
		for (int i = 0; i < xs.length; i++) {
			s += xs[i];
		}
		if (xs.length == 0) {
			throw new ArithmeticException("empty");
		}
		return s / xs.length;
	}
}
`

func TestParseDeclarations(t *testing.T) {
	f := parse(t, demo)
	if f.Package != "weka.core" {
		t.Errorf("package = %q", f.Package)
	}
	if len(f.Imports) != 2 || f.Imports[1] != "weka.core.matrix.*" {
		t.Errorf("imports = %v", f.Imports)
	}
	if len(f.Classes) != 1 {
		t.Fatalf("classes = %d", len(f.Classes))
	}
	c := f.Classes[0]
	if c.Name != "Utils" || c.Extends != "Base" || !c.Mods.Has(ast.ModPublic) {
		t.Errorf("class header wrong: %+v", c)
	}
	if len(c.Fields) != 4 { // MAX, sum, a, b
		t.Fatalf("fields = %d, want 4", len(c.Fields))
	}
	if !c.Fields[0].Mods.Has(ast.ModStatic | ast.ModFinal | ast.ModPublic) {
		t.Error("MAX modifiers wrong")
	}
	if c.Fields[2].Name != "a" || c.Fields[3].Name != "b" || c.Fields[3].Init == nil {
		t.Error("multi-declarator field wrong")
	}
	if len(c.Methods) != 3 {
		t.Fatalf("methods = %d, want 3", len(c.Methods))
	}
	if !c.Methods[0].IsCtor {
		t.Error("constructor not detected")
	}
	if got := c.Methods[2].Throws; len(got) != 1 || got[0] != "ArithmeticException" {
		t.Errorf("throws = %v", got)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	f := parse(t, `class T { int f(int a, int b, int c) { return a + b * c; } }`)
	ret := f.Classes[0].Methods[0].Body.Stmts[0].(*ast.Return)
	bin := ret.X.(*ast.Binary)
	if bin.Op != token.Plus {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*ast.Binary); !ok || inner.Op != token.Star {
		t.Fatalf("rhs = %s, want b * c", ast.PrintExpr(bin.Y))
	}
}

func TestParseTernaryAndShortCircuit(t *testing.T) {
	f := parse(t, `class T { int f(int a) { return a > 0 && a < 10 ? a : -a; } }`)
	ret := f.Classes[0].Methods[0].Body.Stmts[0].(*ast.Return)
	tern, ok := ret.X.(*ast.Ternary)
	if !ok {
		t.Fatalf("not a ternary: %T", ret.X)
	}
	if _, ok := tern.Cond.(*ast.Binary); !ok {
		t.Fatal("ternary condition not parsed as binary")
	}
}

func TestParseArrays(t *testing.T) {
	src := `class T {
		void f() {
			int[][] m = new int[3][4];
			double[] v = new double[10];
			int[] lit = {1, 2, 3};
			m[0][1] = v.length;
			String[] names = new String[2];
		}
	}`
	f := parse(t, src)
	stmts := f.Classes[0].Methods[0].Body.Stmts
	lv := stmts[0].(*ast.LocalVar)
	if lv.Type.Dims != 2 {
		t.Errorf("m dims = %d", lv.Type.Dims)
	}
	na := lv.Init.(*ast.NewArray)
	if len(na.Lens) != 2 {
		t.Errorf("new int[3][4] lens = %d", len(na.Lens))
	}
	if _, ok := stmts[2].(*ast.LocalVar).Init.(*ast.ArrayLit); !ok {
		t.Error("array literal initializer not parsed")
	}
	as := stmts[3].(*ast.ExprStmt).X.(*ast.Assign)
	if _, ok := as.LHS.(*ast.Index); !ok {
		t.Error("m[0][1] not an index lvalue")
	}
	if sel, ok := as.RHS.(*ast.Select); !ok || sel.Name != "length" {
		t.Error("v.length not parsed as select")
	}
}

func TestParseCasts(t *testing.T) {
	src := `class T { void f(double d, Object o) {
		int i = (int) d;
		float g = (float) d;
		String s = (String) o;
		int p = (i) + 1;
	} }`
	f := parse(t, src)
	stmts := f.Classes[0].Methods[0].Body.Stmts
	if _, ok := stmts[0].(*ast.LocalVar).Init.(*ast.Cast); !ok {
		t.Error("(int) d not a cast")
	}
	if _, ok := stmts[2].(*ast.LocalVar).Init.(*ast.Cast); !ok {
		t.Error("(String) o not a cast")
	}
	// (i) + 1 must be parenthesized expr, not a cast of +1.
	if _, ok := stmts[3].(*ast.LocalVar).Init.(*ast.Binary); !ok {
		t.Errorf("(i) + 1 parsed as %T", stmts[3].(*ast.LocalVar).Init)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `class T { int f(int n) {
		int s = 0;
		while (n > 0) { s += n; n--; }
		for (int i = 0, j = 1; i < 10; i++, j--) { if (i % 2 == 0) continue; s++; }
		for (;;) { break; }
		try { s = s / n; } catch (ArithmeticException e) { s = 0; } finally { s++; }
		return s;
	} }`
	f := parse(t, src)
	stmts := f.Classes[0].Methods[0].Body.Stmts
	if _, ok := stmts[1].(*ast.While); !ok {
		t.Error("while not parsed")
	}
	fr := stmts[2].(*ast.For)
	if fr.Init == nil || fr.Cond == nil || len(fr.Post) != 2 {
		t.Error("for clauses wrong")
	}
	inf := stmts[3].(*ast.For)
	if inf.Init != nil || inf.Cond != nil || len(inf.Post) != 0 {
		t.Error("empty for clauses wrong")
	}
	tr := stmts[4].(*ast.Try)
	if len(tr.Catches) != 1 || tr.Finally == nil {
		t.Error("try/catch/finally wrong")
	}
}

func TestParseStringsAndCalls(t *testing.T) {
	src := `class T { void f(String a, String b) {
		String s = a + "x" + b;
		boolean e = a.equals(b);
		int c = a.compareTo(b);
		StringBuilder sb = new StringBuilder();
		sb.append(a).append(b);
		System.arraycopy(x, 0, y, 0, 10);
		System.out.println(s);
	} }`
	f := parse(t, src)
	stmts := f.Classes[0].Methods[0].Body.Stmts
	chain := stmts[4].(*ast.ExprStmt).X.(*ast.Call)
	if chain.Name != "append" {
		t.Error("chained append not parsed")
	}
	if inner, ok := chain.Recv.(*ast.Call); !ok || inner.Name != "append" {
		t.Error("append chain receiver wrong")
	}
	sysout := stmts[6].(*ast.ExprStmt).X.(*ast.Call)
	if sysout.Name != "println" {
		t.Error("println call wrong")
	}
	if sel, ok := sysout.Recv.(*ast.Select); !ok || sel.Name != "out" {
		t.Error("System.out receiver wrong")
	}
}

func TestParseScientificFlag(t *testing.T) {
	f := parse(t, `class T { double a = 1e5; double b = 100000.0; float c = 2.5e-2f; }`)
	fields := f.Classes[0].Fields
	if !fields[0].Init.(*ast.Literal).Sci {
		t.Error("1e5 not flagged scientific")
	}
	if fields[1].Init.(*ast.Literal).Sci {
		t.Error("100000.0 flagged scientific")
	}
	if !fields[2].Init.(*ast.Literal).Sci {
		t.Error("2.5e-2f not flagged scientific")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`class {`,
		`class T { int f( { } }`,
		`class T { void f() { 1 = 2; } }`,
		`class T { void f() { try { } } }`,
		`class T { void f() { int x = ; } }`,
		`class T extends { }`,
		`class T { void f() { new int; } }`,
		`class T { void f() { new Foo[](); } }`,
	} {
		if _, err := Parse("bad.java", src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		} else if !strings.Contains(err.Error(), "bad.java") {
			t.Errorf("error %q missing path", err)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	f := parse(t, demo)
	printed := ast.Print(f)
	f2, err := Parse("printed.java", printed)
	if err != nil {
		t.Fatalf("reparse of printed source failed: %v\n%s", err, printed)
	}
	printed2 := ast.Print(f2)
	if printed != printed2 {
		t.Errorf("print not stable:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}
}

func TestPrintPrecedence(t *testing.T) {
	cases := []string{
		`(a + b) * c`,
		`a - (b - c)`,
		`-(a + b)`,
		`a % (b % c)`,
		`(a = b) + 1`,
		`x ? y : z`,
		`a && (b || c)`,
	}
	for _, expr := range cases {
		src := `class T { int f(int a, int b, int c, boolean x, int y, int z) { return ` + expr + `; } }`
		f := parse(t, src)
		printed := ast.Print(f)
		f2, err := Parse("rt.java", printed)
		if err != nil {
			t.Errorf("reparse %q: %v", expr, err)
			continue
		}
		if ast.Print(f2) != printed {
			t.Errorf("unstable print for %q:\n%s", expr, printed)
		}
	}
}

func TestParseSwitchAndDoWhile(t *testing.T) {
	src := `class T { int f(int v, String s) {
		int r = 0;
		switch (v) {
		case 1:
		case 2:
			r = 12;
			break;
		case 3:
			r = 3;
		default:
			r = -1;
		}
		switch (s) {
		case "x":
			r++;
			break;
		}
		do {
			r += 2;
		} while (r < 10);
		return r;
	} }`
	f := parse(t, src)
	stmts := f.Classes[0].Methods[0].Body.Stmts
	sw := stmts[1].(*ast.Switch)
	if len(sw.Cases) != 4 {
		t.Fatalf("cases = %d, want 4 (two labels, one case, one default)", len(sw.Cases))
	}
	if len(sw.Cases[0].Stmts) != 0 || len(sw.Cases[1].Stmts) != 2 {
		t.Error("empty fall-through label parsed wrong")
	}
	if len(sw.Cases[3].Values) != 0 {
		t.Error("default arm must have no values")
	}
	if _, ok := stmts[3].(*ast.DoWhile); !ok {
		t.Fatalf("do-while parsed as %T", stmts[3])
	}
	// Round trip.
	printed := ast.Print(f)
	f2, err := Parse("rt.java", printed)
	if err != nil {
		t.Fatalf("switch/do-while does not round-trip: %v\n%s", err, printed)
	}
	if ast.Print(f2) != printed {
		t.Errorf("unstable print:\n%s", printed)
	}
}

func TestParseSwitchErrors(t *testing.T) {
	for _, src := range []string{
		`class T { void f(int v) { switch (v) { default: break; default: break; } } }`,
		`class T { void f(int v) { switch (v) { junk } } }`,
		`class T { void f(int v) { switch (v) { case 1 break; } } }`,
		`class T { void f() { do { } while true; } }`,
		`class T { void f() { do { } } }`,
	} {
		if _, err := Parse("bad.java", src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}
