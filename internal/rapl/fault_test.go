package rapl

import (
	"errors"
	"testing"

	"jepo/internal/energy"
)

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultNone: "none", FaultTransient: "transient",
		FaultPermanent: "permanent", FaultStale: "stale",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if FaultKind(99).String() == "" {
		t.Error("unknown kind must still format")
	}
}

func TestFaultySourceScript(t *testing.T) {
	m := newTestMeter()
	src := NewFaultySource(NewSimSource(m), Script{1: FaultTransient, 3: FaultStale, 5: FaultPermanent})

	if _, err := src.Snapshot(); err != nil { // read 0: clean
		t.Fatal(err)
	}
	if _, err := src.Snapshot(); !errors.Is(err, ErrInjectedTransient) { // read 1
		t.Fatalf("read 1: err = %v, want transient", err)
	}
	m.Step(energy.OpModInt, 100_000)
	s2, err := src.Snapshot() // read 2: clean, advanced
	if err != nil {
		t.Fatal(err)
	}
	m.Step(energy.OpModInt, 100_000)
	s3, err := src.Snapshot() // read 3: stale — repeats read 2 despite new energy
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s2 {
		t.Errorf("stale read = %+v, want repeat of %+v", s3, s2)
	}
	if _, err := src.Snapshot(); err != nil { // read 4: clean again
		t.Fatal(err)
	}
	if _, err := src.Snapshot(); !errors.Is(err, ErrInjectedPermission) { // read 5: dies
		t.Fatalf("read 5: err = %v, want permission", err)
	}
	if !src.Dead() {
		t.Error("source must be dead after a permanent fault")
	}
	if _, err := src.Snapshot(); !errors.Is(err, ErrInjectedPermission) { // stays dead
		t.Fatalf("read 6: err = %v, want permission", err)
	}
	if src.Injected() != 4 {
		t.Errorf("injected = %d, want 4 (transient, stale, permanent, dead)", src.Injected())
	}
}

func TestFaultyMSRNeverFaultsPowerUnit(t *testing.T) {
	m := newTestMeter()
	msr := NewFaultyMSR(NewSimMSR(m), Script{0: FaultPermanent})
	if _, err := msr.ReadMSR(MSRPowerUnit); err != nil {
		t.Fatalf("power unit read faulted: %v", err)
	}
	if _, err := msr.ReadMSR(MSRPkgEnergyStatus); !errors.Is(err, ErrInjectedPermission) {
		t.Fatalf("counter read 0: err = %v, want permission", err)
	}
}

func TestRandomFaultySourceDeterministic(t *testing.T) {
	drive := func(seed uint64) (faults int) {
		m := newTestMeter()
		src := NewRandomFaultySource(NewSimSource(m), seed, FaultRates{Transient: 0.3, Stale: 0.2})
		for i := 0; i < 100; i++ {
			m.Step(energy.OpModInt, 1000)
			src.Snapshot()
		}
		return src.Injected()
	}
	a, b := drive(7), drive(7)
	if a != b {
		t.Errorf("same seed injected %d then %d faults", a, b)
	}
	if a == 0 {
		t.Error("rates 0.5 over 100 reads injected nothing")
	}
	if c := drive(8); c == a {
		t.Logf("seeds 7 and 8 coincidentally injected %d faults each", a)
	}
}

// newScriptedSampler builds a sampler whose package counter replays seq
// (core and dram held at zero). The stock unit is 2^-16 J per count.
func newScriptedSampler(t *testing.T, seq []uint64) *Sampler {
	t.Helper()
	msr := &ScriptedMSR{Seq: map[uint32][]uint64{
		MSRPkgEnergyStatus:  seq,
		MSRPP0EnergyStatus:  {0},
		MSRDRAMEnergyStatus: {0},
	}}
	s, err := NewSampler(msr)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSamplerUnwrapBoundary drives the unwrap logic with exact counter
// values around the 32-bit edge: first-read initialization, a wrap exactly
// at the boundary, wrap from the maximum value, and the aliasing limit of a
// double wrap between snapshots.
func TestSamplerUnwrapBoundary(t *testing.T) {
	cases := []struct {
		name string
		seq  []uint64 // raw counter per snapshot
		want []uint64 // accumulated counts after each snapshot
	}{
		{
			name: "first read initializes, not accumulates",
			seq:  []uint64{0xFFFF_FFF0, 0xFFFF_FFF0},
			want: []uint64{0, 0},
		},
		{
			name: "wrap exactly at the boundary",
			seq:  []uint64{0xFFFF_FFFF, 0x0000_0000, 0x0000_0001},
			want: []uint64{0, 1, 2},
		},
		{
			name: "wrap across the boundary mid-delta",
			seq:  []uint64{0xFFFF_FFF0, 0x0000_0010},
			want: []uint64{0, 0x20},
		},
		{
			name: "largest plausible delta is kept",
			seq:  []uint64{0, samplerMaxDelta - 1},
			want: []uint64{0, samplerMaxDelta - 1},
		},
		{
			// A counter advancing by exactly 2^32 between two snapshots is
			// invisible: the modular delta is 0. This is the documented
			// aliasing limit — sample faster than the wrap period.
			name: "double wrap between snapshots aliases to zero",
			seq:  []uint64{0x0000_0100, 0x0000_0100},
			want: []uint64{0, 0},
		},
		{
			// A backwards/stale reading would alias to a near-2^32 delta;
			// the half-range guard skips it and resyncs.
			name: "backwards reading skipped by half-range guard",
			seq:  []uint64{0x0000_1000, 0x0000_0100, 0x0000_0200},
			want: []uint64{0, 0, 0x100},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newScriptedSampler(t, tc.seq)
			for i := range tc.seq {
				snap, err := s.Snapshot()
				if err != nil {
					t.Fatalf("snapshot %d: %v", i, err)
				}
				got := uint64(float64(snap.Package) / float64(s.unit))
				if got != tc.want[i] {
					t.Errorf("after snapshot %d: accumulated %d counts, want %d", i, got, tc.want[i])
				}
			}
		})
	}
}

func TestSamplerHealthCountsStaleSkips(t *testing.T) {
	s := newScriptedSampler(t, []uint64{0x1000, 0x100, 0x200})
	for i := 0; i < 3; i++ {
		if _, err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if h := s.Health(); h.Resets != 1 {
		t.Errorf("health resets = %d, want 1 skipped backwards delta", h.Resets)
	}
}

func TestScriptedMSRHoldsLastValue(t *testing.T) {
	msr := &ScriptedMSR{Seq: map[uint32][]uint64{MSRPkgEnergyStatus: {5, 9}}}
	for i, want := range []uint64{5, 9, 9, 9} {
		v, err := msr.ReadMSR(MSRPkgEnergyStatus)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Errorf("read %d = %d, want %d", i, v, want)
		}
	}
	if _, err := msr.ReadMSR(MSRPP0EnergyStatus); err == nil {
		t.Error("register without a sequence must error")
	}
}
