package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags wires the standard pprof pair (-cpuprofile/-memprofile) into a
// flag set. The CPU profile covers everything between start and stop — these
// are the profiles the metering-floor split in DESIGN.md was measured from —
// and the heap profile is written at stop time after a final GC, so it shows
// live objects rather than collection noise.
type profileFlags struct {
	cpu *string
	mem *string

	cpuFile *os.File
}

func registerProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// start begins CPU profiling if requested. Call stop before exiting.
func (p *profileFlags) start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// stop ends CPU profiling and writes the heap profile, if requested. Errors
// go to stderr: a failed profile write should not fail the measurement run
// whose report already printed.
func (p *profileFlags) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "jperf: cpuprofile:", err)
		}
		p.cpuFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jperf: memprofile:", err)
			return
		}
		runtime.GC() // up-to-date live-object statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jperf: memprofile:", err)
		}
		f.Close()
	}
}
