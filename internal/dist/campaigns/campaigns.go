// Package campaigns registers the repository's measurement campaigns as
// dist task kinds, so Table I/II/IV rows, cross-validation folds, corpus
// analysis and jperf measurement runs can shard across worker processes.
//
// Every kind follows the same contract the in-process pools rely on: a task
// result is a pure function of (task index, task seed, campaign params), so
// a row computed in a re-exec'd worker is bit-identical to one computed
// inline. Campaign-level inputs that are expensive to rebuild (a generated
// corpus, a Table IV runner, a stratified fold split) are memoized per
// worker process keyed by the exact params JSON — a worker serves one
// campaign at a time, so a single-entry memo is enough, and the mutex makes
// it safe for the in-process PipeSpawner workers the tests use.
package campaigns

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"jepo/internal/airlines"
	"jepo/internal/classify"
	"jepo/internal/classify/eval"
	"jepo/internal/core"
	"jepo/internal/corpus"
	"jepo/internal/dataset"
	"jepo/internal/dist"
	"jepo/internal/energy"
	"jepo/internal/engine"
	"jepo/internal/jmetrics"
	"jepo/internal/minijava/interp"
	"jepo/internal/passes"
	"jepo/internal/rapl"
	"jepo/internal/stats"
	"jepo/internal/tables"
)

var (
	regOnce sync.Once
	reg     *dist.Registry
)

// Registry returns the shared kind registry, built once per process. The
// dispatcher side uses it to resolve inline runs (workers <= 1) and the
// worker side serves it over stdio.
func Registry() *dist.Registry {
	regOnce.Do(func() {
		reg = dist.NewRegistry()
		registerTable1(reg)
		registerTable2(reg)
		registerTable4(reg)
		registerCVFold(reg)
		registerCorpusFile(reg)
		registerMeasure(reg)
	})
	return reg
}

// ServeWorker runs the worker loop over stdin/stdout. CLIs call this when
// re-exec'd with dist.WorkerArg.
func ServeWorker() error {
	return dist.ServeStdio(Registry())
}

// memo is a single-entry cache for per-campaign worker state, keyed by the
// campaign's params JSON. Holding the mutex across build serializes
// concurrent first misses, which is exactly what the shared-registry
// PipeSpawner workers need.
type memo[T any] struct {
	mu  sync.Mutex
	key string
	ok  bool
	val T
}

func (m *memo[T]) get(params any, build func() (T, error)) (T, error) {
	blob, err := json.Marshal(params)
	if err != nil {
		var zero T
		return zero, err
	}
	key := string(blob)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ok && m.key == key {
		return m.val, nil
	}
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	m.key, m.val, m.ok = key, v, true
	return v, nil
}

// ---------------------------------------------------------------------------
// Table I: one task per component pair.

// Table1Params parameterizes the "table1" kind.
type Table1Params struct {
	Engine string `json:"engine"`
}

func registerTable1(r *dist.Registry) {
	dist.RegisterFunc(r, "table1", func(task dist.Task, p Table1Params) (tables.Table1Row, error) {
		eng, err := interp.ParseEngine(p.Engine)
		if err != nil {
			return tables.Table1Row{}, err
		}
		return tables.Table1Pair(context.Background(), task.Index, eng)
	})
}

// Table1Rows regenerates Table I through the dispatcher.
func Table1Rows(ctx context.Context, cfg dist.Config, engine interp.Engine) ([]tables.Table1Row, dist.Report, error) {
	return dist.Map[Table1Params, tables.Table1Row](ctx, cfg, Registry(), "table1",
		Table1Params{Engine: engine.String()}, tables.Table1Count(), nil)
}

// ---------------------------------------------------------------------------
// Table II: one task per classifier row.

// Table2Params parameterizes the "table2" kind.
type Table2Params struct {
	Seed uint64 `json:"seed"`
}

func registerTable2(r *dist.Registry) {
	dist.RegisterFunc(r, "table2", func(task dist.Task, p Table2Params) (jmetrics.Metrics, error) {
		if task.Index < 0 || task.Index >= len(corpus.Classifiers) {
			return jmetrics.Metrics{}, fmt.Errorf("campaigns: table2 row %d out of range", task.Index)
		}
		return tables.Table2Row(corpus.Classifiers[task.Index], p.Seed)
	})
}

// Table2Rows regenerates Table II through the dispatcher.
func Table2Rows(ctx context.Context, cfg dist.Config, seed uint64) ([]jmetrics.Metrics, dist.Report, error) {
	return dist.Map[Table2Params, jmetrics.Metrics](ctx, cfg, Registry(), "table2",
		Table2Params{Seed: seed}, len(corpus.Classifiers), nil)
}

// ---------------------------------------------------------------------------
// Table IV: one task per supervised classifier row.

// Table4Params is the wire form of tables.Table4Config: only the fields a
// worker process can honor. Callback knobs (Progress, OnTelemetry, RowHook)
// stay on the dispatcher side.
type Table4Params struct {
	Seed              uint64 `json:"seed"`
	Instances         int    `json:"instances"`
	Reps              int    `json:"reps"`
	ProtocolRuns      int    `json:"protocol_runs"`
	ProtocolMaxRounds int    `json:"protocol_max_rounds"`
	CVFolds           int    `json:"cv_folds"`
	CVJobs            int    `json:"cv_jobs"`
	RowTimeoutMs      int64  `json:"row_timeout_ms"`
	Engine            string `json:"engine"`
	CheckpointDir     string `json:"checkpoint_dir,omitempty"`
}

// Table4ParamsFrom extracts the wire-able subset of a Table IV config.
func Table4ParamsFrom(cfg tables.Table4Config) Table4Params {
	return Table4Params{
		Seed:              cfg.Seed,
		Instances:         cfg.Instances,
		Reps:              cfg.Reps,
		ProtocolRuns:      cfg.Protocol.Runs,
		ProtocolMaxRounds: cfg.Protocol.MaxRounds,
		CVFolds:           cfg.CVFolds,
		CVJobs:            cfg.CVJobs,
		RowTimeoutMs:      int64(cfg.RowTimeout / time.Millisecond),
		Engine:            cfg.Engine.String(),
		CheckpointDir:     cfg.CheckpointDir,
	}
}

func (p Table4Params) config() (tables.Table4Config, error) {
	eng, err := interp.ParseEngine(p.Engine)
	if err != nil {
		return tables.Table4Config{}, err
	}
	return tables.Table4Config{
		Seed:          p.Seed,
		Instances:     p.Instances,
		Reps:          p.Reps,
		Protocol:      stats.Protocol{Runs: p.ProtocolRuns, MaxRounds: p.ProtocolMaxRounds},
		CVFolds:       p.CVFolds,
		CVJobs:        p.CVJobs,
		Engine:        eng,
		Quiet:         true,
		RowTimeout:    time.Duration(p.RowTimeoutMs) * time.Millisecond,
		CheckpointDir: p.CheckpointDir,
	}, nil
}

var table4Memo memo[*tables.Table4Runner]

func registerTable4(r *dist.Registry) {
	dist.RegisterFunc(r, "table4row", func(task dist.Task, p Table4Params) (tables.Table4Row, error) {
		if task.Index < 0 || task.Index >= len(corpus.Classifiers) {
			return tables.Table4Row{}, fmt.Errorf("campaigns: table4 row %d out of range", task.Index)
		}
		runner, err := table4Memo.get(p, func() (*tables.Table4Runner, error) {
			cfg, err := p.config()
			if err != nil {
				return nil, err
			}
			return tables.NewTable4Runner(cfg)
		})
		if err != nil {
			return tables.Table4Row{}, err
		}
		return runner.Row(context.Background(), corpus.Classifiers[task.Index]), nil
	})
}

// Table4Rows regenerates the supervised Table IV through the dispatcher.
// Row failures stay inside the rows (Err set), exactly as in
// tables.Table4Supervised; the returned error covers infrastructure only.
func Table4Rows(ctx context.Context, cfg dist.Config, tcfg tables.Table4Config) ([]tables.Table4Row, dist.Report, error) {
	return dist.Map[Table4Params, tables.Table4Row](ctx, cfg, Registry(), "table4row",
		Table4ParamsFrom(tcfg), len(corpus.Classifiers), nil)
}

// ---------------------------------------------------------------------------
// Cross-validation: one task per stratified fold.

// CVParams parameterizes the "cvfold" kind: the airlines dataset scale, the
// split seed and the classifier under evaluation. Single selects
// single-precision training (the Table IV accuracy-drop experiment).
type CVParams struct {
	Classifier string `json:"classifier"`
	Seed       uint64 `json:"seed"`
	Folds      int    `json:"folds"`
	Instances  int    `json:"instances"`
	Single     bool   `json:"single,omitempty"`
}

// cvContext is the per-campaign worker state for "cvfold": the dataset, the
// stratified split, the pre-derived fold seeds and the validated factory.
type cvContext struct {
	data  *dataset.Dataset
	folds [][]int
	seeds []uint64
	make  eval.SeededFactory
}

var cvMemo memo[*cvContext]

func cvBuild(p CVParams) (*cvContext, error) {
	d := airlines.Generate(p.Instances, p.Seed)
	folds, err := d.StratifiedFolds(p.Folds, p.Seed)
	if err != nil {
		return nil, err
	}
	fp := classify.Double
	if p.Single {
		fp = classify.Single
	}
	mk, err := tables.FactorySeeded(p.Classifier, classify.Options{Seed: p.Seed, FP: fp})
	if err != nil {
		return nil, err
	}
	return &cvContext{data: d, folds: folds, seeds: eval.FoldSeeds(p.Seed, len(folds)), make: mk}, nil
}

func registerCVFold(r *dist.Registry) {
	dist.RegisterFunc(r, "cvfold", func(task dist.Task, p CVParams) (eval.FoldEval, error) {
		ctx, err := cvMemo.get(p, func() (*cvContext, error) { return cvBuild(p) })
		if err != nil {
			return eval.FoldEval{}, err
		}
		if task.Index < 0 || task.Index >= len(ctx.folds) {
			return eval.FoldEval{}, fmt.Errorf("campaigns: fold %d out of range", task.Index)
		}
		return eval.EvalFold(ctx.data, ctx.folds, task.Index, ctx.seeds[task.Index], ctx.make)
	})
}

// CrossValidate runs one classifier's stratified cross-validation through
// the dispatcher and merges the fold outcomes in fold order, bit-identical
// to eval.CrossValidateSeeded on the same inputs.
func CrossValidate(ctx context.Context, cfg dist.Config, p CVParams) (*eval.Result, dist.Report, error) {
	d := airlines.Generate(p.Instances, p.Seed)
	folds, err := d.StratifiedFolds(p.Folds, p.Seed)
	if err != nil {
		return nil, dist.Report{}, err
	}
	evals, rep, err := dist.Map[CVParams, eval.FoldEval](ctx, cfg, Registry(), "cvfold", p, len(folds), nil)
	if err != nil {
		return nil, rep, err
	}
	return eval.MergeFoldEvals(d.NumClasses(), evals), rep, nil
}

// ---------------------------------------------------------------------------
// Corpus analysis: one task per generated corpus file.

// CorpusParams parameterizes the "corpusfile" kind.
type CorpusParams struct {
	Classifier string `json:"classifier"`
	Seed       uint64 `json:"seed"`
	Engine     string `json:"engine"`
}

// DiagSummary is one diagnostic's corpus-rendering subset. CorpusView
// aggregates only rule and severity (plus per-file counts), so shipping
// these two fields reproduces the corpus report byte-for-byte without
// serializing fix closures.
type DiagSummary struct {
	Rule     int `json:"rule"`
	Severity int `json:"severity"`
}

// FileSummary is one corpus file's analysis outcome on the wire.
type FileSummary struct {
	Path  string        `json:"path"`
	Diags []DiagSummary `json:"diags"`
}

var corpusMemo memo[*corpus.Project]

func registerCorpusFile(r *dist.Registry) {
	dist.RegisterFunc(r, "corpusfile", func(task dist.Task, p CorpusParams) (FileSummary, error) {
		eng, err := interp.ParseEngine(p.Engine)
		if err != nil {
			return FileSummary{}, err
		}
		proj, err := corpusMemo.get(p, func() (*corpus.Project, error) {
			return corpus.Generate(p.Classifier, p.Seed)
		})
		if err != nil {
			return FileSummary{}, err
		}
		if task.Index < 0 || task.Index >= len(proj.Files) {
			return FileSummary{}, fmt.Errorf("campaigns: corpus file %d out of range", task.Index)
		}
		f := proj.Files[task.Index]
		rep, err := core.Analyze(context.Background(), core.Project{f.Path: f.Source},
			core.AnalyzeConfig{Jobs: 1, Engine: eng})
		if err != nil {
			return FileSummary{}, fmt.Errorf("campaigns: %s: %w", f.Path, err)
		}
		out := FileSummary{Path: f.Path, Diags: make([]DiagSummary, len(rep.Diags))}
		for i, d := range rep.Diags {
			out.Diags[i] = DiagSummary{Rule: int(d.Rule), Severity: int(d.Severity)}
		}
		return out, nil
	})
}

// AnalyzeCorpus runs the corpus-wide pass engine through the dispatcher and
// reconstructs the corpus report from the per-file summaries. The report
// carries exactly the fields core.CorpusView consumes, so the rendered
// summary is byte-identical to an in-process core.AnalyzeAll run.
func AnalyzeCorpus(ctx context.Context, cfg dist.Config, classifier string, seed uint64, engine interp.Engine) (*core.CorpusReport, dist.Report, error) {
	proj, err := corpus.Generate(classifier, seed)
	if err != nil {
		return nil, dist.Report{}, err
	}
	report := &core.CorpusReport{Root: proj.Root, Files: make([]core.FileAnalysis, 0, len(proj.Files))}
	rep, err := dist.Run(ctx, cfg, Registry(), "corpusfile",
		CorpusParams{Classifier: classifier, Seed: seed, Engine: engine.String()}, len(proj.Files),
		func(task dist.Task, raw json.RawMessage) {
			var fs FileSummary
			if jerr := json.Unmarshal(raw, &fs); jerr != nil {
				if err == nil {
					err = fmt.Errorf("campaigns: corpus file %d: %w", task.Index, jerr)
				}
				return
			}
			ar := &core.AnalysisReport{Diags: make([]core.AnalyzedDiagnostic, len(fs.Diags))}
			for i, d := range fs.Diags {
				ar.Diags[i] = core.AnalyzedDiagnostic{Diagnostic: passes.Diagnostic{
					Rule:     passes.Rule(d.Rule),
					Severity: passes.Severity(d.Severity),
				}}
			}
			report.Files = append(report.Files, core.FileAnalysis{Path: fs.Path, Report: ar})
		})
	if err != nil {
		return nil, rep, err
	}
	return report, rep, nil
}

// ---------------------------------------------------------------------------
// jperf measurement runs: one task per repeated run.

// SourceFile is one raw program file on the wire.
type SourceFile struct {
	Path   string `json:"path"`
	Source string `json:"source"`
}

// MeasureParams parameterizes the "measure" kind: the full program source,
// the entry class and the engine. Runs are identical by construction — the
// simulator is deterministic — so the task index only names the repetition.
type MeasureParams struct {
	Files  []SourceFile `json:"files"`
	Main   string       `json:"main,omitempty"`
	Engine string       `json:"engine"`
}

// Measurement is one run's counters on the wire. Joule fields ride as
// float64: encoding/json emits the shortest round-tripping form, so the
// decoded bits equal the measured bits exactly.
type Measurement struct {
	Pkg       float64     `json:"pkg"`
	Core      float64     `json:"core"`
	DRAM      float64     `json:"dram"`
	ElapsedNs int64       `json:"elapsed_ns"`
	Cycles    float64     `json:"cycles"`
	Health    rapl.Health `json:"health"`
}

var measureMemo memo[*interp.Program]

func registerMeasure(r *dist.Registry) {
	dist.RegisterFuncHealth(r, "measure", func(task dist.Task, p MeasureParams) (Measurement, rapl.Health, error) {
		eng, err := interp.ParseEngine(p.Engine)
		if err != nil {
			return Measurement{}, rapl.Health{}, err
		}
		prog, err := measureMemo.get(p, func() (*interp.Program, error) {
			return loadSources(p.Files)
		})
		if err != nil {
			return Measurement{}, rapl.Health{}, err
		}
		m, err := measureOnce(prog, p.Main, eng)
		if err != nil {
			return Measurement{}, rapl.Health{}, err
		}
		return m, m.Health, nil
	})
}

// loadSources parses and links a wire-shipped program through the worker's
// process-wide artifact engine: a worker serving many repetitions (or many
// campaigns over the same sources) compiles the program once. The
// single-entry memo above stays as a fast path and preserves one-compile
// behavior when the cache is disabled.
func loadSources(files []SourceFile) (*interp.Program, error) {
	srcs := make([]engine.Source, len(files))
	for i, f := range files {
		srcs[i] = engine.Source{Path: f.Path, Source: f.Source}
	}
	return engine.Default().Program(srcs, false)
}

// measureOnce mirrors jperf's runOnce: a fresh meter and interpreter, the
// counters read through the resilient RAPL wrapper.
func measureOnce(prog *interp.Program, mainClass string, engine interp.Engine) (Measurement, error) {
	meter := energy.NewMeter(energy.DefaultCosts())
	src := rapl.NewResilient(rapl.NewSimSource(meter))
	before, err := src.Snapshot()
	if err != nil {
		return Measurement{}, err
	}
	t0 := meter.Snapshot()
	in := interp.New(prog, meter, interp.WithMaxOps(2_000_000_000), interp.WithEngine(engine))
	if err := in.RunMain(mainClass); err != nil {
		return Measurement{}, err
	}
	after, err := src.Snapshot()
	if err != nil {
		return Measurement{}, err
	}
	t1 := meter.Snapshot()
	d := after.Sub(before)
	return Measurement{
		Pkg:       float64(d.Package),
		Core:      float64(d.Core),
		DRAM:      float64(d.DRAM),
		ElapsedNs: int64(t1.Elapsed - t0.Elapsed),
		Cycles:    t1.Cycles - t0.Cycles,
		Health:    src.Health(),
	}, nil
}

// MeasureRuns performs n repeated measurement runs through the dispatcher.
func MeasureRuns(ctx context.Context, cfg dist.Config, p MeasureParams, n int) ([]Measurement, dist.Report, error) {
	return dist.Map[MeasureParams, Measurement](ctx, cfg, Registry(), "measure", p, n, nil)
}
