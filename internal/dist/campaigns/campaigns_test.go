package campaigns

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"jepo/internal/airlines"
	"jepo/internal/classify"
	"jepo/internal/classify/eval"
	"jepo/internal/core"
	"jepo/internal/corpus"
	"jepo/internal/dist"
	"jepo/internal/minijava/interp"
	"jepo/internal/tables"
)

const campaignSeed = 20200518

// distCfg builds a dispatcher config over in-process pipe workers with the
// given chaos plan, mirroring how the CLIs run minus the process boundary.
func distCfg(workers int, plan *dist.FaultPlan) dist.Config {
	return dist.Config{
		Workers:   workers,
		Seed:      campaignSeed,
		Retries:   2,
		Deadline:  2 * time.Second,
		Heartbeat: 20 * time.Millisecond,
		Spawn:     dist.PipeSpawner(Registry()),
		Plan:      plan,
	}
}

// TestTable2RowsDistMatchesInline: the Table II campaign sharded across
// workers — one of which is killed mid-campaign — must produce exactly the
// rows of the in-process pool.
func TestTable2RowsDistMatchesInline(t *testing.T) {
	want, _, err := tables.Table2Parallel(context.Background(), campaignSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{1: {1: dist.FaultKill}}}
	got, rep, err := Table2Rows(context.Background(), distCfg(3, plan), campaignSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dist rows diverge from inline:\n got %+v\nwant %+v", got, want)
	}
	if rep.Quarantines != 1 || rep.Deaths != 1 {
		t.Errorf("expected the killed worker quarantined: %s", rep.String())
	}
}

// TestCrossValidateDistMatchesInline: fold evaluations computed in workers
// merge to the exact Result of eval.CrossValidateSeeded — same splits, same
// per-fold seeds, same confusion counts.
func TestCrossValidateDistMatchesInline(t *testing.T) {
	p := CVParams{Classifier: "RandomTree", Seed: campaignSeed, Folds: 4, Instances: 300}
	d := airlines.Generate(p.Instances, p.Seed)
	mk, err := tables.FactorySeeded(p.Classifier, classify.Options{Seed: p.Seed, FP: classify.Double})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.CrossValidateSeeded(context.Background(), d, p.Folds, p.Seed, mk, 1)
	if err != nil {
		t.Fatal(err)
	}

	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{0: {0: dist.FaultHang}}}
	cfg := distCfg(2, plan)
	cfg.Deadline = 300 * time.Millisecond
	got, rep, err := CrossValidate(context.Background(), cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dist cross-validation diverges:\n got %+v\nwant %+v", got, want)
	}
	if math.Float64bits(got.Accuracy()) != math.Float64bits(want.Accuracy()) {
		t.Errorf("accuracy bits diverge: %x vs %x",
			math.Float64bits(got.Accuracy()), math.Float64bits(want.Accuracy()))
	}
	if rep.Timeouts != 1 || rep.Quarantines != 1 {
		t.Errorf("expected the hung worker quarantined: %s", rep.String())
	}
}

// TestAnalyzeCorpusDistMatchesInline: the corpus campaign's reconstructed
// report must render byte-identically to an in-process core.AnalyzeAll run,
// even with a worker killed mid-campaign.
func TestAnalyzeCorpusDistMatchesInline(t *testing.T) {
	proj, err := corpus.Generate("RandomTree", campaignSeed)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.AnalyzeAll(context.Background(), proj, core.AnalyzeConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{2: {3: dist.FaultKill}}}
	got, rep, err := AnalyzeCorpus(context.Background(), distCfg(4, plan), "RandomTree", campaignSeed, interp.EngineVM)
	if err != nil {
		t.Fatal(err)
	}
	if core.CorpusView(got) != core.CorpusView(want) {
		t.Error("dist corpus view diverges from inline render")
	}
	if len(got.Files) != len(want.Files) {
		t.Errorf("file count %d, want %d", len(got.Files), len(want.Files))
	}
	if rep.Quarantines != 1 {
		t.Errorf("expected one quarantine: %s", rep.String())
	}
}

// TestMeasureRunsDistMatchesInline: repeated measurement runs are identical
// by construction; a worker-computed run must carry the same counter bits
// as an inline one, including the health tally.
func TestMeasureRunsDistMatchesInline(t *testing.T) {
	p := MeasureParams{
		Files: []SourceFile{{Path: "Work.java", Source: `class Work {
	public static void main(String[] args) {
		long total = 0;
		for (int i = 0; i < 200; i++) {
			total = total + i % 8;
		}
		System.out.println(total);
	}
}`}},
		Engine: "vm",
	}
	want, _, err := MeasureRuns(context.Background(), dist.Config{Workers: 1, Seed: campaignSeed}, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := MeasureRuns(context.Background(), distCfg(2, nil), p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dist measurements diverge:\n got %+v\nwant %+v", got, want)
	}
	for i, m := range got {
		if math.Float64bits(m.Pkg) != math.Float64bits(want[i].Pkg) {
			t.Errorf("run %d: pkg bits diverge", i)
		}
	}
	if rep.Workers != 2 {
		t.Errorf("report workers = %d, want 2", rep.Workers)
	}
}

// TestTable1RowsDistSubset runs the full Table I campaign through pipe
// workers with one kill and compares every measured bit against the inline
// pool. Skipped under -short: the campaign executes all 22 benchmark
// variants twice.
func TestTable1RowsDistSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 measurement campaign is slow")
	}
	want, _, err := tables.Table1Jobs(context.Background(), interp.EngineVM, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := &dist.FaultPlan{Script: map[int]map[int]dist.FaultKind{0: {2: dist.FaultKill}}}
	got, rep, err := Table1Rows(context.Background(), distCfg(2, plan), interp.EngineVM)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("dist Table I rows diverge from inline")
	}
	for i := range got {
		if math.Float64bits(got[i].MeasuredPct) != math.Float64bits(want[i].MeasuredPct) {
			t.Errorf("row %d: measured pct bits diverge", i)
		}
	}
	if rep.Quarantines != 1 {
		t.Errorf("expected one quarantine: %s", rep.String())
	}
}
