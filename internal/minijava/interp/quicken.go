package interp

import (
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/bytecode"
)

// Runtime quickening support. A shared Program is immutable after Load; the
// VM patches opcodes only in warmState.code — this instance's private copy —
// so concurrent interpreters over one Program never write shared memory. The
// copy is positionally identical to the finalized stream (patches swap
// opcodes in place), so jump offsets, block tables and the disassembler's
// annotations carry over unchanged.

// vmIC is one inline-cache slot, indexed by a quickened instruction's C
// operand. A site only ever uses the fields its quick form reads:
//
//	OpQCallSelf     class (guard), m, cf, static
//	OpQCallVirtual  class (guard), m, cf
//	OpQCallStatic   cls (guard), class, m, cf
//	OpQGetField     class (guard), ix
//	OpQGetStatic    cls (guard), slot
//	OpQGetConst     cls (guard), v
//	OpQPushV        v (invariant, no guard)
type vmIC struct {
	class  *classInfo
	cls    string
	m      *ast.Method
	cf     *compiledFn
	slot   *staticSlot
	v      Value
	ix     int32
	static bool
}

// warmState is one function's per-instance execution state: the private code
// copy quickening patches and the inline-cache table it indexes.
type warmState struct {
	code []bytecode.Instr
	ics  []vmIC
}

// warmFor returns this instance's warm copy of cf, creating it on first
// invocation.
func (in *Interp) warmFor(cf *compiledFn) *warmState {
	if in.warm == nil {
		in.warm = make([]warmState, len(in.prog.funcs))
	}
	w := &in.warm[cf.ix]
	if w.code == nil {
		w.code = append([]bytecode.Instr(nil), cf.fn.Code...)
		if cf.fn.NICs > 0 {
			w.ics = make([]vmIC, cf.fn.NICs)
		}
	}
	return w
}

// quickenCall inspects a generic OpCall's observed shape and, when the site
// is specializable, fills its inline cache and patches the opcode, reporting
// whether the caller should re-dispatch. Runs at most a handful of times per
// site and charges nothing, so it is kept out of the dispatch loop to keep
// execVM under the compiler's "big function" inlining threshold (past which
// the meter calls on the hot paths stop inlining).
func (in *Interp) quickenCall(ins *bytecode.Instr, ics []vmIC, fr *frame, recv Value) bool {
	n := ins.Node.(*ast.Call)
	argc := int(ins.A)
	if ins.B == 0 {
		if m := fr.class.findMethod(n.Name, argc); m != nil {
			ics[ins.C] = vmIC{class: fr.class, m: m, cf: in.compiledFor(m), static: m.Mods.Has(ast.ModStatic)}
			ins.Op = bytecode.OpQCallSelf
			return true
		}
		return false
	}
	switch recv.K {
	case KRef:
		obj := recv.R.(*Object)
		if m := obj.Class.findMethod(n.Name, argc); m != nil {
			ics[ins.C] = vmIC{class: obj.Class, m: m, cf: in.compiledFor(m)}
			ins.Op = bytecode.OpQCallVirtual
			return true
		}
	case KClassRef:
		cls := recv.R.(string)
		if ix := int(n.SiteIx) - 1; ix >= 0 && ix < len(in.prog.sites) {
			switch ps := &in.prog.sites[ix]; ps.kind {
			case siteStaticCall:
				if ps.cls == cls {
					ics[ins.C] = vmIC{cls: cls, class: ps.ci, m: ps.m, cf: in.compiledFor(ps.m)}
					ins.Op = bytecode.OpQCallStatic
					return true
				}
			case siteBuiltinStaticCall:
				if ps.cls == cls {
					ics[ins.C] = vmIC{cls: cls}
					ins.Op = bytecode.OpQCallBuiltin
					return true
				}
			}
		}
	case KString, KSB, KBox, KThrow:
		// Builtin value-kind receiver: there is no resolution to cache (the
		// runtime dispatches on the name), but the quick form skips the
		// pooled argument copy and the dispatch ladder. KRef, KClassRef and
		// KNull keep their own paths; other kinds (no methods) stay generic
		// so the walker's diagnostics apply.
		ins.Op = bytecode.OpQCallInstance
		return true
	}
	return false
}

// quickenSelect is quickenCall's counterpart for OpLoadSelect, dispatching on
// the observed receiver kind.
func (in *Interp) quickenSelect(ins *bytecode.Instr, ics []vmIC, x Value) bool {
	n := ins.Node.(*ast.Select)
	switch x.K {
	case KRef:
		obj := x.R.(*Object)
		if fix, ok := obj.Class.fieldIx[n.Name]; ok {
			ics[ins.C] = vmIC{class: obj.Class, ix: int32(fix)}
			ins.Op = bytecode.OpQGetField
			return true
		}
	case KClassRef:
		cls := x.R.(string)
		if ix := int(n.SiteIx) - 1; ix >= 0 && ix < len(in.prog.sites) {
			switch ps := &in.prog.sites[ix]; ps.kind {
			case siteStaticSel:
				if ps.cls == cls {
					ics[ins.C] = vmIC{cls: cls, slot: ps.slot}
					ins.Op = bytecode.OpQGetStatic
					return true
				}
			case siteBuiltinConstSel:
				if ps.cls == cls {
					ics[ins.C] = vmIC{cls: cls, v: ps.v}
					ins.Op = bytecode.OpQGetConst
					return true
				}
			}
		}
	case KArr:
		if n.Name == "length" {
			ins.Op = bytecode.OpQArrLen
			return true
		}
	}
	return false
}

// icMissSelf re-resolves an OpQCallSelf site whose guard missed (the frame's
// class changed — the method body runs for another class). Identical lookup
// and failure mode to dispatchCall's unqualified path.
func (in *Interp) icMissSelf(ic *vmIC, fr *frame, n *ast.Call, argc int) {
	m := fr.class.findMethod(n.Name, argc)
	if m == nil {
		in.bugf(n.Pos, "unknown method %s/%d in class %s", n.Name, argc, fr.class.Name)
	}
	*ic = vmIC{class: fr.class, m: m, cf: in.compiledFor(m), static: m.Mods.Has(ast.ModStatic)}
}

// icMissVirtual re-resolves an OpQCallVirtual site for a new receiver class.
func (in *Interp) icMissVirtual(ic *vmIC, obj *Object, n *ast.Call, argc int) {
	m := obj.Class.findMethod(n.Name, argc)
	if m == nil {
		in.bugf(n.Pos, "class %s has no method %s/%d", obj.Class.Name, n.Name, argc)
	}
	*ic = vmIC{class: obj.Class, m: m, cf: in.compiledFor(m)}
}

// icMissField re-resolves an OpQGetField site for a new receiver class.
func (in *Interp) icMissField(ic *vmIC, obj *Object, n *ast.Select) {
	fix, ok := obj.Class.fieldIx[n.Name]
	if !ok {
		in.bugf(n.Pos, "class %s has no field %s", obj.Class.Name, n.Name)
	}
	ic.class, ic.ix = obj.Class, int32(fix)
}

// callQBuiltinStatic runs a quickened builtin static call. The guard already
// matched the site's class, so on a name/arity miss the only remaining
// outcome is dispatchCall's tail diagnostic: the class cannot be user-defined
// (the resolver would have pinned siteStaticCall) and failing builtin lookups
// charge nothing, so re-walking the generic ladder would reach the same bugf
// with the same meter state.
func (in *Interp) callQBuiltinStatic(cls string, n *ast.Call, argv []Value) Value {
	v, ok := in.callBuiltinStatic(cls, n.Name, argv, n.Pos)
	if !ok {
		in.bugf(n.Pos, "unknown static method %s.%s/%d", cls, n.Name, len(argv))
	}
	return v
}

// callQBuiltinInstance runs a quickened builtin-receiver instance call,
// mirroring dispatchCall's default arm.
func (in *Interp) callQBuiltinInstance(recv Value, n *ast.Call, argv []Value) Value {
	v, ok := in.callBuiltinInstance(recv, n.Name, argv, n.Pos)
	if !ok {
		in.bugf(n.Pos, "no method %s on %v", n.Name, recv.K)
	}
	return v
}

// icInvoke dispatches a quickened call through the cached compiled function,
// or the tree-walker when the callee has no lowering.
func (in *Interp) icInvoke(ic *vmIC, ci *classInfo, this *Object, argv []Value) Value {
	if ic.cf != nil {
		return in.invokeVM(ci, this, ic.m, ic.cf, argv)
	}
	return in.invoke(ci, this, ic.m, argv)
}

// compiledFor resolves a method to its compiled function, or nil when it runs
// on the tree-walker — the value call-site inline caches pin.
func (in *Interp) compiledFor(m *ast.Method) *compiledFn {
	if ix := int(m.CIx) - 1; uint(ix) < uint(len(in.prog.funcs)) {
		if cf := &in.prog.funcs[ix]; cf.fn != nil {
			return cf
		}
	}
	return nil
}

// DisasmWarm renders the program's compiled form using this instance's warm
// (quickened) code copies where they exist — the `jperf disasm -warm`
// backend. Functions this instance never invoked print in their cold form.
func (in *Interp) DisasmWarm() string {
	return in.prog.disasm(func(cf *compiledFn) string {
		if in.warm != nil {
			if w := &in.warm[cf.ix]; w.code != nil {
				return cf.fn.DisasmCode(w.code)
			}
		}
		return cf.fn.Disasm()
	})
}
