package tables

import (
	"context"
	"fmt"
	"strings"

	"jepo/internal/airlines"
	"jepo/internal/corpus"
	"jepo/internal/energy"
	"jepo/internal/engine"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/refactor"
	"jepo/internal/stats"
)

// AblationRow reports the Random Forest Table IV improvement when one cost-
// model feature is neutralized. It quantifies how much of the headline
// result each modelled mechanism carries.
type AblationRow struct {
	Variant     string
	Description string
	PackagePct  float64
}

// ablationVariant mutates a cost table to remove one mechanism.
type ablationVariant struct {
	name string
	desc string
	mod  func(*energy.CostTable)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"full", "complete cost model", func(t *energy.CostTable) {}},
		{"no-cache", "cache misses cost the same as hits", func(t *energy.CostTable) {
			t.CacheMiss = energy.Cost{
				Picojoules: t.CacheHit.Picojoules + 1, // Validate requires miss > hit
				Cycles:     t.CacheHit.Cycles,
			}
		}},
		{"cheap-static", "static access costs the same as a local", func(t *energy.CostTable) {
			t.Ops[energy.OpStatic] = t.Ops[energy.OpLocal]
		}},
		{"cheap-modulus", "modulus costs the same as other integer arithmetic", func(t *energy.CostTable) {
			t.Ops[energy.OpModInt] = t.Ops[energy.OpArithInt]
		}},
		{"uniform-fp", "double arithmetic costs the same as float", func(t *energy.CostTable) {
			t.Ops[energy.OpArithDouble] = t.Ops[energy.OpArithFloat]
		}},
		{"no-uncore", "no static package power (package = core)", func(t *energy.CostTable) {
			t.UncoreWatts = 0
		}},
	}
}

// AblationConfig scales the ablation runs.
type AblationConfig struct {
	Seed       uint64
	Classifier string // default RandomForest
	Instances  int
	Reps       int
	Engine     interp.Engine // execution engine (zero value = bytecode VM)
}

// DefaultAblationConfig matches the Table IV defaults at reduced repetition.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Seed: 20200518, Classifier: "RandomForest", Instances: 2000, Reps: 2}
}

// Ablate measures the chosen classifier's refactoring improvement under each
// cost-model variant. The spread across variants shows which mechanisms the
// headline improvement decomposes into.
func Ablate(ctx context.Context, cfg AblationConfig) ([]AblationRow, error) {
	if cfg.Classifier == "" {
		cfg.Classifier = "RandomForest"
	}
	proj, err := corpus.Generate(cfg.Classifier, cfg.Seed)
	if err != nil {
		return nil, err
	}
	orig, err := kernelAST(engine.Default(), proj, cfg.Classifier)
	if err != nil {
		return nil, err
	}
	refd, err := kernelAST(engine.Default(), proj, cfg.Classifier)
	if err != nil {
		return nil, err
	}
	refactor.Apply([]*ast.File{refd})

	data := airlines.Generate(cfg.Instances, cfg.Seed)
	feats, labels := kernelData(data)

	var rows []AblationRow
	for _, v := range ablationVariants() {
		costs := energy.DefaultCosts()
		v.mod(&costs)
		if err := costs.Validate(); err != nil {
			return nil, fmt.Errorf("tables: ablation %s produced invalid costs: %w", v.name, err)
		}
		before, err := runKernelWithCosts(ctx, orig, cfg.Classifier, feats, labels, cfg.Reps, costs, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("tables: ablation %s: %w", v.name, err)
		}
		after, err := runKernelWithCosts(ctx, refd, cfg.Classifier, feats, labels, cfg.Reps, costs, cfg.Engine)
		if err != nil {
			return nil, fmt.Errorf("tables: ablation %s: %w", v.name, err)
		}
		rows = append(rows, AblationRow{
			Variant:     v.name,
			Description: v.desc,
			PackagePct:  stats.Improvement(float64(before.pkg), float64(after.pkg)),
		})
	}
	return rows, nil
}

// runKernelWithCosts is runKernelOnce with an explicit cost table.
func runKernelWithCosts(ctx context.Context, kernel *ast.File, name string, feats [][]float64, labels []int64, reps int, costs energy.CostTable, engine interp.Engine) (kernelMeasurement, error) {
	prog, err := interp.Load(kernel)
	if err != nil {
		return kernelMeasurement{}, err
	}
	in := interp.New(prog, energy.NewMeter(costs), interp.WithMaxOps(2_000_000_000), interp.WithEngine(engine), interp.WithContext(ctx))
	if err := in.InitStatics(); err != nil {
		return kernelMeasurement{}, err
	}
	kc := corpus.KernelClass(name)
	if err := in.Bind(kc, "DATA", in.NewDoubleMatrix(feats)); err != nil {
		return kernelMeasurement{}, err
	}
	if err := in.Bind(kc, "LABELS", in.NewIntArray(labels)); err != nil {
		return kernelMeasurement{}, err
	}
	before := in.Meter().Snapshot()
	if _, err := in.CallStatic(kc, "run", interp.IntVal(int64(reps))); err != nil {
		return kernelMeasurement{}, err
	}
	d := in.Meter().Snapshot().Sub(before)
	return kernelMeasurement{pkg: d.Package, core: d.Core, elapsed: d.Elapsed}, nil
}

// RenderAblation lays out the ablation rows.
func RenderAblation(classifier string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s kernel improvement under cost-model variants\n", classifier)
	fmt.Fprintf(&sb, "%-14s %12s  %s\n", "Variant", "Package (%)", "Description")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12.2f  %s\n", r.Variant, r.PackagePct, r.Description)
	}
	return sb.String()
}
