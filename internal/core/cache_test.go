package core

import (
	"context"
	"testing"

	"jepo/internal/engine"
	"jepo/internal/passes"
)

// cacheProject: three files, two of which never change and one main with
// multiple fixable findings — the shape where the old pipeline's
// O(files × fixes) re-parsing hurt.
var cacheProject = Project{
	"Main.java": `class Main {
	public static void main(String[] args) {
		long total = 0;
		double t = 0.5;
		for (int i = 0; i < 200; i++) {
			total = total + i % 8;
			t = t + 100000.0;
		}
		System.out.println(total + Helper.twice(3) + Other.base());
		System.out.println(t);
	}
}`,
	"Helper.java": `class Helper {
	static int twice(int x) { return x * 2; }
}`,
	"Other.java": `class Other {
	static int base() { return 7; }
}`,
}

// fixableCount is the number of diagnostics carrying a mechanical fix, i.e.
// the number of per-fix measurement checkouts Analyze performs.
func fixableCount(r *AnalysisReport) int {
	n := 0
	for _, d := range r.Diags {
		if d.Fix != nil {
			n++
		}
	}
	return n
}

// TestAnalyzeParseCountRegression pins the tentpole's headline win: with the
// artifact engine, Analyze parses each file exactly once — detection, the
// baseline program and every per-fix checkout all hydrate from the same
// masters — instead of the old O(files × fixes) full re-parses. The disabled
// engine reproduces the old parse count, proving the comparison is honest.
func TestAnalyzeParseCountRegression(t *testing.T) {
	const nFiles = 3

	cached := engine.New(engine.Config{})
	rep, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Cache: cached})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Executable {
		t.Fatalf("fixture not executable: %s", rep.ExecNote)
	}
	fixes := fixableCount(rep)
	if fixes < 2 {
		t.Fatalf("fixture too weak: only %d fixable diagnostics", fixes)
	}
	if got := cached.Stats().Parses; got != nFiles {
		t.Fatalf("cached Analyze parses = %d, want %d (one per file)", got, nFiles)
	}

	off := engine.New(engine.Config{Disabled: true})
	repOff, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Cache: off})
	if err != nil {
		t.Fatal(err)
	}
	// Old pipeline shape: detection + baseline + one full re-parse per fix.
	want := uint64(nFiles * (2 + fixes))
	if got := off.Stats().Parses; got != want {
		t.Fatalf("disabled Analyze parses = %d, want %d (files × (2 + fixes))", got, want)
	}

	// Cost changed; bytes must not have.
	if AnalysisView(rep) != AnalysisView(repOff) {
		t.Fatal("cached and uncached analysis reports diverge")
	}
}

// TestAnalyzeWarmReportHit: a second identical Analyze call is a report-level
// cache hit — the very same artifact, not merely an equal one.
func TestAnalyzeWarmReportHit(t *testing.T) {
	eng := engine.New(engine.Config{})
	a, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Cache: eng})
	if err != nil {
		t.Fatal(err)
	}
	parses := eng.Stats().Parses
	b, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Cache: eng})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("warm Analyze rebuilt the report instead of hitting the cache")
	}
	if got := eng.Stats().Parses; got != parses {
		t.Fatalf("warm Analyze parsed again: %d → %d", parses, got)
	}

	// Jobs is execution shape, not key material: a different worker count
	// must serve the same cached report.
	c, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Jobs: 4, Cache: eng})
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("Jobs leaked into the report cache key")
	}
}

// TestAnalyzeRuleSubsetKeysSeparately: the rule selection is key material —
// a restricted analysis is a distinct artifact, and flipping back to the
// full rule set hits the original.
func TestAnalyzeRuleSubsetKeysSeparately(t *testing.T) {
	eng := engine.New(engine.Config{})
	full, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Cache: eng})
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Rules: []passes.Rule{passes.RuleModulusOperator}, Cache: eng})
	if err != nil {
		t.Fatal(err)
	}
	if restricted == full {
		t.Fatal("rule subset returned the full-rules report artifact")
	}
	if len(restricted.Diags) >= len(full.Diags) {
		t.Fatalf("restricted rules found %d diags, full found %d", len(restricted.Diags), len(full.Diags))
	}
	again, err := Analyze(context.Background(), cacheProject, AnalyzeConfig{Cache: eng})
	if err != nil {
		t.Fatal(err)
	}
	if again != full {
		t.Fatal("full-rules re-run missed its cached report")
	}
}
