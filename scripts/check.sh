#!/bin/sh
# check.sh runs the full hygiene gate: formatting, vet, and the test suite
# under the race detector. CI and `make check` both call this script.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== fault matrix =="
go test -tags faultmatrix -run FaultMatrix ./internal/rapl/... ./internal/profile/...

echo "OK"
