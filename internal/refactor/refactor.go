// Package refactor applies the mechanical Table I transformations the paper's
// validation performed on WEKA. It is a thin facade over the unified pass
// engine (internal/passes): Apply analyzes the files once — every rule in one
// shared traversal per file — and then applies the fixes attached to the
// resulting diagnostics. Detection is never duplicated here.
//
// Apply mutates the given ASTs in place; callers who need the original keep
// the source text and re-parse.
package refactor

import (
	"jepo/internal/minijava/ast"
	"jepo/internal/passes"
	"jepo/internal/suggest"
)

// Result summarizes an Apply run.
type Result struct {
	Changes int
	ByRule  map[suggest.Rule]int
}

// Apply runs the requested rules (all rules when none are given) over the
// files and reports how many changes were made. The count corresponds to the
// "Changes" column of the paper's Table IV.
func Apply(files []*ast.File, rules ...suggest.Rule) *Result {
	diags := passes.AnalyzeFilesRules(files, rules...)
	res := passes.ApplyFixes(files, diags)
	return &Result{Changes: res.Changes, ByRule: res.ByRule}
}
