// The bench -vm mode compares the two execution engines over the Table I
// interpreter corpus. Both engines drive the same energy model and must agree
// on every joule bit-for-bit — the comparison here is wall clock and
// allocations, i.e. pure interpreter engineering. The run fails if the
// simulated energy diverges between engines, so the trajectory file doubles
// as a determinism check.
//
// The report also measures the bytecode probe splice: an instrumented program
// is run with probes as AST scaffolding (JEPO.enter/exit calls, which cost
// modelled ops) and as spliced PROBE opcodes (which cost none), recording the
// wall-clock overhead of the opcodes and the modelled energy the splice
// avoids charging.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"jepo/internal/energy"
	"jepo/internal/instrument"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/tables"
)

// vmBenchPoint is one benchmark's engine comparison, measured at three VM
// configurations against the tree-walker baseline: tier 1 (the raw stream as
// compiled, no finalization), tier 2 with runtime quickening disabled (block
// charge pre-aggregation and compile-time pins only) and tier 2 in full
// (runtime quickening and inline caches on — the default engine). The two
// gain columns split tier 2's win over tier 1 between its static and its
// runtime half; both are percentages of the tier-1 time.
type vmBenchPoint struct {
	Name           string  `json:"name"`
	Runs           int     `json:"runs"`
	ASTNsPerOp     float64 `json:"ast_ns_per_op"`
	Tier1NsPerOp   float64 `json:"vm_tier1_ns_per_op"`
	NoQuickNsPerOp float64 `json:"vm_tier2_noquick_ns_per_op"`
	VMNsPerOp      float64 `json:"vm_ns_per_op"` // tier 2 full
	ASTAllocsOp    float64 `json:"ast_allocs_per_op"`
	VMAllocsOp     float64 `json:"vm_allocs_per_op"`
	UJPerOp        float64 `json:"uj_per_op"`     // identical across engines by construction
	Tier1Speedup   float64 `json:"tier1_speedup"` // ast_ns / tier1_ns
	Speedup        float64 `json:"speedup"`       // ast_ns / vm_ns (tier 2 full)
	Tier2VsTier1   float64 `json:"tier2_vs_tier1"`
	AggGainPct     float64 `json:"block_agg_gain_pct"` // static half: 100*(t1-noquick)/t1
	QuickGainPct   float64 `json:"quickening_gain_pct"`
	EnergyEqual    bool    `json:"energy_equal"`
}

// vmProbeOverhead quantifies the probe-opcode splice against the AST
// scaffolding on one instrumented workload.
type vmProbeOverhead struct {
	Name              string  `json:"name"`
	PlainNsPerOp      float64 `json:"plain_ns_per_op"`          // VM, uninstrumented
	OpcodeNsPerOp     float64 `json:"opcode_ns_per_op"`         // VM, spliced probe opcodes
	ScaffoldNsPerOp   float64 `json:"scaffold_ns_per_op"`       // AST engine, JEPO.enter/exit calls
	OpcodeOverheadPct float64 `json:"opcode_overhead_pct"`      // (opcode-plain)/plain
	AvoidedUJPerOp    float64 `json:"avoided_uj_per_op"`        // scaffold µJ/op - opcode µJ/op
	OpcodeEnergyDelta float64 `json:"opcode_uj_delta_vs_plain"` // opcode µJ/op - plain µJ/op (0 by design)
}

// vmBenchReport is the BENCH_vm.json document.
type vmBenchReport struct {
	GeneratedAt      string          `json:"generated_at"`
	GoVersion        string          `json:"go_version"`
	Benchmarks       []vmBenchPoint  `json:"benchmarks"`
	MeanTier1Speedup float64         `json:"mean_tier1_speedup"`
	MeanSpeedup      float64         `json:"mean_speedup"` // tier 2 full vs tree-walker
	MeanTier2VsTier1 float64         `json:"mean_tier2_vs_tier1"`
	ProbeOverhead    vmProbeOverhead `json:"probe_overhead"`
}

func runVMBench(out string, repeats int) error {
	report := vmBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	logSpeedup, logT1, logT2v1 := 0.0, 0.0, 0.0
	for _, b := range tables.InterpBenches() {
		pt, err := runVMBenchOne(b, repeats)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		report.Benchmarks = append(report.Benchmarks, pt)
		logSpeedup += math.Log(pt.Speedup)
		logT1 += math.Log(pt.Tier1Speedup)
		logT2v1 += math.Log(pt.Tier2VsTier1)
		fmt.Printf("%-40s ast %11.0f   t1 %10.0f   t2 %10.0f ns/op   %.2fx (t1 %.2fx; agg %+.0f%% quick %+.0f%%)\n",
			pt.Name, pt.ASTNsPerOp, pt.Tier1NsPerOp, pt.VMNsPerOp,
			pt.Speedup, pt.Tier1Speedup, -pt.AggGainPct, -pt.QuickGainPct)
	}
	n := float64(len(report.Benchmarks))
	report.MeanSpeedup = math.Exp(logSpeedup / n)
	report.MeanTier1Speedup = math.Exp(logT1 / n)
	report.MeanTier2VsTier1 = math.Exp(logT2v1 / n)

	po, err := runProbeOverhead(repeats)
	if err != nil {
		return fmt.Errorf("probe overhead: %w", err)
	}
	report.ProbeOverhead = po
	fmt.Printf("%-40s plain %9.0f ns/op   probed %8.0f ns/op   %+.1f%% (avoids %.2f µJ/op of scaffolding)\n",
		"probe opcodes ("+po.Name+")", po.PlainNsPerOp, po.OpcodeNsPerOp, po.OpcodeOverheadPct, po.AvoidedUJPerOp)
	fmt.Printf("geometric mean speedup: %.2fx over the tree-walker (tier 1: %.2fx; tier 2 over tier 1: %.2fx)\n",
		report.MeanSpeedup, report.MeanTier1Speedup, report.MeanTier2VsTier1)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report.Benchmarks))
	return nil
}

// engineRun measures repeats warm calls of B.f under one engine, returning
// wall ns/op, allocs/op and the exact simulated package energy delta. extra
// options select VM tiers for the breakdown columns.
func engineRun(src string, e interp.Engine, repeats int, extra ...interp.Option) (nsOp, allocsOp float64, pkg energy.Joules, err error) {
	f, err := parser.Parse("bench.java", src)
	if err != nil {
		return 0, 0, 0, err
	}
	prog, err := interp.Load(f)
	if err != nil {
		return 0, 0, 0, err
	}
	opts := append([]interp.Option{
		interp.WithMaxOps(2_000_000_000), interp.WithEngine(e)}, extra...)
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), opts...)
	if err := in.InitStatics(); err != nil {
		return 0, 0, 0, err
	}
	if _, err := in.CallStatic("B", "f"); err != nil {
		return 0, 0, 0, err
	}
	var ms0, ms1 runtime.MemStats
	before := in.Meter().Snapshot()
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := in.CallStatic("B", "f"); err != nil {
			return 0, 0, 0, err
		}
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	d := in.Meter().Snapshot().Sub(before)
	r := float64(repeats)
	return float64(wall.Nanoseconds()) / r, float64(ms1.Mallocs-ms0.Mallocs) / r, d.Package, nil
}

func runVMBenchOne(b tables.InterpBench, repeats int) (vmBenchPoint, error) {
	astNs, astAllocs, astPkg, err := engineRun(b.Src, interp.EngineAST, repeats)
	if err != nil {
		return vmBenchPoint{}, err
	}
	t1Ns, _, t1Pkg, err := engineRun(b.Src, interp.EngineVM, repeats, interp.WithVMTier(1))
	if err != nil {
		return vmBenchPoint{}, err
	}
	nqNs, _, nqPkg, err := engineRun(b.Src, interp.EngineVM, repeats, interp.WithQuickening(false))
	if err != nil {
		return vmBenchPoint{}, err
	}
	vmNs, vmAllocs, vmPkg, err := engineRun(b.Src, interp.EngineVM, repeats)
	if err != nil {
		return vmBenchPoint{}, err
	}
	// Every configuration must land on the same joule bits: tiers and
	// quickening are dispatch engineering, never charge engineering.
	if astPkg != vmPkg || astPkg != t1Pkg || astPkg != nqPkg {
		return vmBenchPoint{}, fmt.Errorf("engines disagree on simulated energy: ast=%v tier1=%v noquick=%v vm=%v",
			astPkg, t1Pkg, nqPkg, vmPkg)
	}
	return vmBenchPoint{
		Name:           b.Name,
		Runs:           repeats,
		ASTNsPerOp:     astNs,
		Tier1NsPerOp:   t1Ns,
		NoQuickNsPerOp: nqNs,
		VMNsPerOp:      vmNs,
		ASTAllocsOp:    astAllocs,
		VMAllocsOp:     vmAllocs,
		UJPerOp:        float64(vmPkg) * 1e6 / float64(repeats),
		Tier1Speedup:   astNs / t1Ns,
		Speedup:        astNs / vmNs,
		Tier2VsTier1:   t1Ns / vmNs,
		AggGainPct:     100 * (t1Ns - nqNs) / t1Ns,
		QuickGainPct:   100 * (nqNs - vmNs) / t1Ns,
		EnergyEqual:    true,
	}, nil
}

// countingHook is the cheapest possible probe consumer, so the overhead
// measured is the probe mechanism, not the profiler behind it.
type countingHook struct{ enters, exits int }

func (h *countingHook) Enter(string) { h.enters++ }
func (h *countingHook) Exit(string)  { h.exits++ }

// probeSrc exercises the probe path hard: many short method calls, so the
// enter/exit machinery dominates rather than the method bodies.
const probeSrc = `class B {
	static int leaf(int x) { return x + 1; }
	static int mid(int x) { return leaf(x) + leaf(x + 1); }
	static double f() {
		int s = 0;
		for (int i = 0; i < 20000; i++) { s += mid(i); }
		return s;
	}
}`

// probedRun parses probeSrc, optionally instruments it, and measures repeats
// warm calls of B.f under the given engine with a counting hook installed.
func probedRun(e interp.Engine, instrumented bool, repeats int) (nsOp float64, pkg energy.Joules, err error) {
	f, err := parser.Parse("probe.java", probeSrc)
	if err != nil {
		return 0, 0, err
	}
	if instrumented {
		instrument.Inject(f)
	}
	prog, err := interp.Load(f)
	if err != nil {
		return 0, 0, err
	}
	hook := &countingHook{}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()),
		interp.WithMaxOps(2_000_000_000), interp.WithEngine(e), interp.WithHook(hook))
	if err := in.InitStatics(); err != nil {
		return 0, 0, err
	}
	if _, err := in.CallStatic("B", "f"); err != nil {
		return 0, 0, err
	}
	before := in.Meter().Snapshot()
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := in.CallStatic("B", "f"); err != nil {
			return 0, 0, err
		}
	}
	wall := time.Since(t0)
	d := in.Meter().Snapshot().Sub(before)
	if instrumented && hook.enters == 0 {
		return 0, 0, fmt.Errorf("probes never fired")
	}
	return float64(wall.Nanoseconds()) / float64(repeats), d.Package, nil
}

func runProbeOverhead(repeats int) (vmProbeOverhead, error) {
	plainNs, plainPkg, err := probedRun(interp.EngineVM, false, repeats)
	if err != nil {
		return vmProbeOverhead{}, err
	}
	opcodeNs, opcodePkg, err := probedRun(interp.EngineVM, true, repeats)
	if err != nil {
		return vmProbeOverhead{}, err
	}
	scaffoldNs, scaffoldPkg, err := probedRun(interp.EngineAST, true, repeats)
	if err != nil {
		return vmProbeOverhead{}, err
	}
	r := float64(repeats)
	return vmProbeOverhead{
		Name:              "call-heavy",
		PlainNsPerOp:      plainNs,
		OpcodeNsPerOp:     opcodeNs,
		ScaffoldNsPerOp:   scaffoldNs,
		OpcodeOverheadPct: 100 * (opcodeNs - plainNs) / plainNs,
		AvoidedUJPerOp:    float64(scaffoldPkg-opcodePkg) * 1e6 / r,
		OpcodeEnergyDelta: float64(opcodePkg-plainPkg) * 1e6 / r,
	}, nil
}
