// Package dist runs measurement campaigns across worker processes with
// node-level fault tolerance. It is the process analog of the sched pool:
// a dispatcher shards independent tasks (table rows, CV folds, corpus
// files, measurement runs) across workers — normally the same binary
// re-exec'd in worker mode, speaking a JSON-line protocol over stdio —
// and merges replies in index order, so the campaign result is
// byte-identical to a sequential run at any worker count.
//
// The robustness model extends rapl.Resilient from flaky MSRs to flaky
// nodes: per-task deadlines armed by worker heartbeats, bounded
// retry-with-backoff and reassignment to a different worker, a per-node
// strike ledger that quarantines misbehaving workers, and an atomic JSON
// checkpoint of completed tasks so an interrupted campaign resumes
// without re-measuring. A campaign only fails outright when every worker
// is gone or a task exhausts its retries; anything less degrades.
//
// Determinism rests on two properties: task results are pure functions of
// (task index, per-task seed, campaign params) — the same sched.TaskSeed
// derivation the in-process pool uses — and Go's encoding/json renders
// float64 values in shortest form, which round-trips every finite bit
// pattern exactly. A result computed in a worker process and decoded by
// the dispatcher is therefore bit-identical to one computed inline.
package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"jepo/internal/rapl"
)

// WorkerArg is the magic first argument that switches a campaign-capable
// binary into worker mode. It is deliberately un-flag-like so it can never
// collide with a real input file or flag.
const WorkerArg = "__dist-worker"

// FaultsEnv names the environment variable the CLIs consult for a scripted
// chaos plan (see ParseFaultPlan). It exists so shell-level gates like
// scripts/check.sh can inject worker kills without new flags.
const FaultsEnv = "JEPO_DIST_FAULTS"

// Task identifies one unit of campaign work. Seed is derived from the
// campaign seed and the index exactly as sched.TaskSeed derives pool task
// seeds, so a kind's runner draws the same stream whether it executes
// inline, in a pool worker, or in another process.
type Task struct {
	Index int
	Seed  uint64
}

// Output is a runner's reply: the result as canonical JSON plus the
// degraded-measurement tally the task's sources absorbed while producing
// it. The zero Health means every read was clean.
type Output struct {
	Result json.RawMessage
	Health rapl.Health
}

// Runner executes one task of a campaign kind. It must be a pure function
// of (task, params): no ordering dependence on other tasks, no hidden
// global streams. Runners are called concurrently by in-process worker
// transports and must be goroutine-safe.
type Runner func(task Task, params json.RawMessage) (Output, error)

// Registry maps campaign kinds to runners. A binary registers every kind
// it can serve and passes the registry both to the dispatcher (for the
// inline path) and to Serve (for worker mode), so dispatching to a worker
// process runs exactly the code the sequential path runs.
type Registry struct {
	mu    sync.RWMutex
	kinds map[string]Runner
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{kinds: make(map[string]Runner)}
}

// Register adds a kind. Registering a duplicate or empty kind is a
// programming error and panics.
func (r *Registry) Register(kind string, fn Runner) {
	if kind == "" || fn == nil {
		panic("dist: Register requires a kind and a runner")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.kinds[kind]; dup {
		panic("dist: duplicate kind " + kind)
	}
	r.kinds[kind] = fn
}

// Kinds lists the registered kinds in sorted order.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.kinds))
	for k := range r.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// runner resolves a kind.
func (r *Registry) runner(kind string) (Runner, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.kinds[kind]
	if !ok {
		return nil, fmt.Errorf("dist: unknown campaign kind %q", kind)
	}
	return fn, nil
}

var jsonNull = []byte("null")

// RegisterFunc registers a typed runner: params decode into P, the result
// R encodes to JSON. Use RegisterFuncHealth when the runner also reports a
// measurement-health tally.
func RegisterFunc[P, R any](reg *Registry, kind string, fn func(task Task, params P) (R, error)) {
	RegisterFuncHealth(reg, kind, func(task Task, params P) (R, rapl.Health, error) {
		res, err := fn(task, params)
		return res, rapl.Health{}, err
	})
}

// RegisterFuncHealth registers a typed runner whose tasks report the
// degraded-measurement tally alongside the result, so worker-side Health
// survives the wire and aggregates in the dispatcher's report.
func RegisterFuncHealth[P, R any](reg *Registry, kind string, fn func(task Task, params P) (R, rapl.Health, error)) {
	reg.Register(kind, func(task Task, params json.RawMessage) (Output, error) {
		var p P
		if len(params) > 0 && !bytes.Equal(params, jsonNull) {
			if err := json.Unmarshal(params, &p); err != nil {
				return Output{}, fmt.Errorf("dist: %s params: %w", kind, err)
			}
		}
		res, health, err := fn(task, p)
		if err != nil {
			return Output{}, err
		}
		blob, err := json.Marshal(res)
		if err != nil {
			return Output{}, fmt.Errorf("dist: %s result: %w", kind, err)
		}
		return Output{Result: blob, Health: health}, nil
	})
}

// runSafe invokes a runner with panic recovery: a panicking task becomes a
// task error, never a dead worker. This mirrors sched's in-pool recovery
// and tables.superviseRow — a deterministic panic must fail the same task
// identically on every node, not burn through the fleet.
func runSafe(fn Runner, task Task, params json.RawMessage) (out Output, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: task %d panicked: %v", task.Index, r)
		}
	}()
	return fn(task, params)
}
