// RAPL example: the measurement substrate on its own. The probes JEPO
// injects read energy counters through the same protocol real hardware
// exposes — 32-bit energy-status registers scaled by the energy-status unit,
// unwrapped by a sampler. This example shows both back ends:
//
//  1. the real Linux powercap interface, when the host exposes
//     /sys/class/powercap/intel-rapl* (run as root on an Intel machine);
//  2. the simulated MSR file over the calibrated energy model, otherwise.
package main

import (
	"fmt"
	"log"

	"jepo/internal/energy"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/rapl"
)

func main() {
	if src := rapl.Detect(); src != nil {
		fmt.Println("real RAPL counters detected via powercap:")
		a, err := src.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		// Burn a little CPU so the counters move.
		x := 0.0
		for i := 0; i < 50_000_000; i++ {
			x += float64(i % 7)
		}
		b, err := src.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		d := b.Sub(a)
		fmt.Printf("  busy loop (checksum %g): package=%v core=%v dram=%v\n",
			x, d.Package, d.Core, d.DRAM)
	} else {
		fmt.Println("no powercap RAPL on this host; using the simulator")
	}

	// The simulated path, end to end: meter → MSR registers → sampler.
	meter := energy.NewMeter(energy.DefaultCosts())
	msr := rapl.NewSimMSR(meter)
	pu, err := msr.ReadMSR(rapl.MSRPowerUnit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated MSR_RAPL_POWER_UNIT = %#x (energy unit %v per count)\n",
		pu, rapl.EnergyUnit(pu))

	sampler, err := rapl.NewSampler(msr)
	if err != nil {
		log.Fatal(err)
	}
	before, err := sampler.Snapshot()
	if err != nil {
		log.Fatal(err)
	}

	// Run a mini-Java workload against the meter the registers expose.
	f, err := parser.Parse("work.java", `class W {
		static int f() {
			int s = 0;
			for (int i = 0; i < 50000; i++) { s += i % 7; }
			return s;
		}
	}`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := interp.Load(f)
	if err != nil {
		log.Fatal(err)
	}
	in := interp.New(prog, meter, interp.WithEngine(interp.EngineVM))
	v, err := in.CallStatic("W", "f")
	if err != nil {
		log.Fatal(err)
	}
	after, err := sampler.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	d := after.Sub(before)
	fmt.Printf("mini-Java workload (result %d):\n", v.I)
	fmt.Printf("  package=%v core=%v dram=%v (read through the MSR protocol)\n",
		d.Package, d.Core, d.DRAM)
	fmt.Printf("  raw meter says package=%v — the difference is counter quantization\n",
		meter.Snapshot().Package)

	// The tree-walking engine charges the same meter ops in the same order
	// as the bytecode VM, so an independent run reads identical energy —
	// the determinism invariant the golden tests pin.
	astMeter := energy.NewMeter(energy.DefaultCosts())
	astIn := interp.New(prog, astMeter, interp.WithEngine(interp.EngineAST))
	if _, err := astIn.CallStatic("W", "f"); err != nil {
		log.Fatal(err)
	}
	match := "bit-identical"
	if astMeter.Snapshot().Package != meter.Snapshot().Package {
		match = "MISMATCH — engine divergence"
	}
	fmt.Printf("  tree-walker cross-check: package=%v (%s)\n",
		astMeter.Snapshot().Package, match)
}
