// The sched benchmark (jperf bench -sched) measures what the deterministic
// worker pool buys on this machine: wall-clock for a reduced Table IV
// regeneration and a corpus-wide pass analysis, sequential vs -jobs {2,4,8}.
// Determinism is asserted inside the bench — every parallel run's results
// must be bit-identical (same float64 bit patterns for every Joule-derived
// column) to the sequential run, or the bench fails.
//
// The report records NumCPU and GOMAXPROCS: speedup is bounded by physical
// parallelism, so on a single-CPU host the jobs>1 points measure pool
// overhead (and must still be bit-identical), not speedup.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"jepo/internal/core"
	"jepo/internal/corpus"
	"jepo/internal/stats"
	"jepo/internal/tables"
)

// schedPoint is one jobs setting's measurement for a workload.
type schedPoint struct {
	Jobs    int     `json:"jobs"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_sequential"`
	// BitIdentical reports the in-bench determinism check: the workload's
	// full result fingerprint (every float64 as raw bits) matched the
	// sequential run exactly.
	BitIdentical bool `json:"bit_identical"`
}

// schedWorkload is one benchmarked fan-out.
type schedWorkload struct {
	Name   string       `json:"name"`
	Tasks  int          `json:"tasks"`
	Points []schedPoint `json:"points"`
}

// schedBenchReport is the BENCH_sched.json document.
type schedBenchReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	NumCPU      int             `json:"num_cpu"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Note        string          `json:"note"`
	Workloads   []schedWorkload `json:"workloads"`
}

var schedBenchJobs = []int{2, 4, 8}

// runSchedBench measures both workloads at every jobs setting and writes the
// report. A fingerprint mismatch — parallel results diverging from the
// sequential run — is a correctness failure and aborts the bench.
func runSchedBench(ctx context.Context, out string) error {
	report := schedBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note: "results are asserted bit-identical at every jobs value; " +
			"speedup is bounded by num_cpu, so single-CPU hosts measure pool overhead",
	}

	workloads := []struct {
		name  string
		tasks int
		run   func(jobs int) (string, error)
	}{
		{"table4-reduced", len(corpus.Classifiers), func(jobs int) (string, error) { return schedBenchTable4(ctx, jobs) }},
		{"corpus-analyze", 0, func(jobs int) (string, error) { return schedBenchCorpus(ctx, jobs) }}, // tasks filled on first run
	}
	for _, w := range workloads {
		wl := schedWorkload{Name: w.name, Tasks: w.tasks}
		t0 := time.Now()
		seqFP, err := w.run(1)
		if err != nil {
			return fmt.Errorf("%s sequential: %w", w.name, err)
		}
		seq := time.Since(t0).Seconds()
		wl.Points = append(wl.Points, schedPoint{Jobs: 1, Seconds: seq, Speedup: 1, BitIdentical: true})
		fmt.Printf("%-16s jobs=1 %8.2fs (baseline)\n", w.name, seq)
		for _, jobs := range schedBenchJobs {
			t0 = time.Now()
			fp, err := w.run(jobs)
			if err != nil {
				return fmt.Errorf("%s jobs=%d: %w", w.name, jobs, err)
			}
			secs := time.Since(t0).Seconds()
			identical := fp == seqFP
			wl.Points = append(wl.Points, schedPoint{
				Jobs: jobs, Seconds: secs, Speedup: seq / secs, BitIdentical: identical,
			})
			fmt.Printf("%-16s jobs=%d %8.2fs (%.2fx)\n", w.name, jobs, secs, seq/secs)
			if !identical {
				return fmt.Errorf("%s: jobs=%d results are NOT bit-identical to sequential", w.name, jobs)
			}
		}
		if wl.Tasks == 0 {
			wl.Tasks = schedCorpusTasks
		}
		report.Workloads = append(report.Workloads, wl)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workloads)\n", out, len(report.Workloads))
	return nil
}

// schedBenchTable4 regenerates a reduced Table IV (fewer instances, minimum
// protocol runs) at the given row parallelism and fingerprints every column.
func schedBenchTable4(ctx context.Context, jobs int) (string, error) {
	cfg := tables.Table4Config{
		Seed:      20200518,
		Instances: 400,
		Reps:      1,
		Protocol:  stats.Protocol{Runs: 3, MaxRounds: 2},
		CVFolds:   3,
		Slots:     jobs,
	}
	rows, err := tables.Table4(ctx, cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s|%d|%x|%x|%x|%x\n", r.Classifier, r.Changes,
			math.Float64bits(r.PackagePct), math.Float64bits(r.CPUPct),
			math.Float64bits(r.TimePct), math.Float64bits(r.AccuracyPct))
	}
	return sb.String(), nil
}

var schedCorpusTasks int

// schedBenchCorpus fans the pass engine across one generated classifier
// closure and fingerprints every per-file report, energy bits included.
func schedBenchCorpus(ctx context.Context, jobs int) (string, error) {
	p, err := corpus.Generate("RandomTree", 20200518)
	if err != nil {
		return "", err
	}
	schedCorpusTasks = len(p.Files)
	rep, _, err := core.AnalyzeAll(ctx, p, core.AnalyzeConfig{Jobs: jobs})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, fa := range rep.Files {
		fmt.Fprintf(&sb, "%s|%v|%x\n", fa.Path, fa.Report.Executable,
			math.Float64bits(float64(fa.Report.Baseline.Package)))
		for _, d := range fa.Report.Diags {
			fmt.Fprintf(&sb, "  %s|%v|%x|%q\n", d.Diagnostic, d.Verdict,
				math.Float64bits(float64(d.Delta)), d.Note)
		}
	}
	sb.WriteString(core.CorpusView(rep))
	return sb.String(), nil
}
