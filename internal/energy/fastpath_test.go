package energy

import (
	"math/rand"
	"strings"
	"testing"
)

// The fast path's only contract is bit-identity: every precomputed or fused
// charge must land on exactly the joule, cycle and counter bits the reference
// slow path produces. These tests hold the two paths against each other —
// exhaustively over the cost table, and differentially over seeded random
// charge lists and access geometries. Float comparisons are deliberately ==,
// not within-epsilon: an epsilon would accept the drift the design forbids.

// newFastSlow builds a fast-path meter and a slow-path meter over the same
// cost table and cache geometry, regardless of the ambient environment.
func newFastSlow(t *testing.T, costs CostTable, cache CacheConfig) (fast, slow *Meter) {
	t.Helper()
	t.Setenv(FastPathEnv, "")
	fast = NewMeterCache(costs, cache)
	if !fast.FastPath() {
		t.Fatal("meter built with fast path requested is not fast")
	}
	t.Setenv(FastPathEnv, "off")
	slow = NewMeterCache(costs, cache)
	if slow.FastPath() {
		t.Fatal("meter built with JEPO_METER_FASTPATH=off is fast")
	}
	return fast, slow
}

// sameBits fails unless the two meters' samples and op counters are
// bit-identical.
func sameBits(t *testing.T, what string, fast, slow *Meter) {
	t.Helper()
	fs, ss := fast.Snapshot(), slow.Snapshot()
	if fs != ss {
		t.Fatalf("%s: fast sample %+v != slow sample %+v", what, fs, ss)
	}
	for op := 0; op < NumOps; op++ {
		if fast.OpCount(Op(op)) != slow.OpCount(Op(op)) {
			t.Fatalf("%s: op %v count fast=%d slow=%d",
				what, Op(op), fast.OpCount(Op(op)), slow.OpCount(Op(op)))
		}
	}
	fh, fm := fast.CacheStats()
	sh, sm := slow.CacheStats()
	if fh != sh || fm != sm {
		t.Fatalf("%s: cache stats fast=%d/%d slow=%d/%d", what, fh, fm, sh, sm)
	}
}

// TestStepFastSlowBitIdentity drives every op of the full cost table through
// both paths at unit and non-unit counts, accumulating across calls so any
// divergence compounds into the running sums.
func TestStepFastSlowBitIdentity(t *testing.T) {
	fast, slow := newFastSlow(t, DefaultCosts(), DefaultCacheConfig())
	for _, n := range []int{1, 1, 2, 3, 7, 1000, 0, -4} {
		for op := 0; op < NumOps; op++ {
			fast.Step(Op(op), n)
			slow.Step(Op(op), n)
		}
		sameBits(t, "after n="+string(rune('0'+max(n, 0)%10)), fast, slow)
	}
}

// TestStepListVsStepRun replays seeded random charge lists through StepList
// on one meter and through BindSteps+StepRun on another, requiring the same
// bits. Mixed counts exercise both the unit fold (x*1.0 == x) and the
// general product, and non-positive entries must be dropped identically.
func TestStepListVsStepRun(t *testing.T) {
	costs := DefaultCosts()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		charges := make([]Charge, rng.Intn(40))
		for i := range charges {
			charges[i] = Charge{Op: Op(rng.Intn(NumOps)), N: int32(rng.Intn(6) - 1)}
		}
		a := NewMeter(costs)
		b := NewMeter(costs)
		deltas := costs.BindSteps(charges)
		for rep := 0; rep < 3; rep++ {
			a.StepList(charges)
			b.StepRun(deltas)
		}
		as, bs := a.Snapshot(), b.Snapshot()
		if as != bs {
			t.Fatalf("trial %d: StepList %+v != StepRun %+v", trial, as, bs)
		}
		for op := 0; op < NumOps; op++ {
			if a.OpCount(Op(op)) != b.OpCount(Op(op)) {
				t.Fatalf("trial %d: op %v count list=%d run=%d",
					trial, Op(op), a.OpCount(Op(op)), b.OpCount(Op(op)))
			}
		}
	}
}

// TestAccessFastSlowBitIdentity walks both paths over a mixed access pattern:
// sequential sweeps (hits), strided sweeps (misses and evictions), and
// accesses sized and placed to span line boundaries — the case the fast
// single-line check must hand back to the general path.
func TestAccessFastSlowBitIdentity(t *testing.T) {
	geometries := []CacheConfig{
		DefaultCacheConfig(),
		{SizeBytes: 24 << 10, LineBytes: 64, Ways: 8}, // 48 sets: not a power of two
		{SizeBytes: 4 << 10, LineBytes: 32, Ways: 2},
		{SizeBytes: 16 << 10, LineBytes: 128, Ways: 4},
	}
	for _, g := range geometries {
		fast, slow := newFastSlow(t, DefaultCosts(), g)
		rng := rand.New(rand.NewSource(43))
		base := fast.Alloc(1 << 16)
		if sb := slow.Alloc(1 << 16); sb != base {
			t.Fatalf("allocators diverged: %d vs %d", base, sb)
		}
		for i := 0; i < 4000; i++ {
			addr := base + uint64(rng.Intn(1<<16))
			size := []int{1, 4, 8, 8, 64, 100, 0}[rng.Intn(7)]
			fast.Access(addr, size)
			slow.Access(addr, size)
		}
		sameBits(t, "random accesses", fast, slow)
	}
}

// TestAccessRunVsAccessDifferential checks that one AccessRun call is
// bit-identical to its unbatched expansion — N individual Access calls —
// over random bases, strides (including zero and line-spanning), counts and
// sizes, under both the fast and the slow path.
func TestAccessRunVsAccessDifferential(t *testing.T) {
	for _, env := range []string{"", "off"} {
		t.Setenv(FastPathEnv, env)
		rng := rand.New(rand.NewSource(47))
		for trial := 0; trial < 60; trial++ {
			g := DefaultCacheConfig()
			if trial%3 == 1 {
				g = CacheConfig{SizeBytes: 24 << 10, LineBytes: 64, Ways: 8}
			}
			run := NewMeterCache(DefaultCosts(), g)
			one := NewMeterCache(DefaultCosts(), g)
			base := run.Alloc(1 << 16)
			one.Alloc(1 << 16)
			base += uint64(rng.Intn(256))
			stride := uint64(rng.Intn(200))
			count := rng.Intn(300)
			size := []int{1, 4, 8, 61, 64, 200}[rng.Intn(6)]
			run.AccessRun(base, stride, count, size)
			for k := 0; k < count; k++ {
				one.Access(base+uint64(k)*stride, size)
			}
			rs, os := run.Snapshot(), one.Snapshot()
			if rs != os {
				t.Fatalf("env=%q trial %d (base=%d stride=%d count=%d size=%d):\nAccessRun %+v\nAccess×N  %+v",
					env, trial, base, stride, count, size, rs, os)
			}
			rh, rm := run.CacheStats()
			oh, om := one.CacheStats()
			if rh != oh || rm != om {
				t.Fatalf("env=%q trial %d: cache run=%d/%d one=%d/%d", env, trial, rh, rm, oh, om)
			}
		}
	}
}

// TestFusedHelpersMatchGeneralSequence pins each flattened helper to the
// general call sequence it replaces, under both path settings: the fused
// form must be indistinguishable from its expansion.
func TestFusedHelpersMatchGeneralSequence(t *testing.T) {
	for _, env := range []string{"", "off"} {
		t.Setenv(FastPathEnv, env)
		fused := NewMeter(DefaultCosts())
		expanded := NewMeter(DefaultCosts())
		base := fused.Alloc(4096)
		expanded.Alloc(4096)
		rng := rand.New(rand.NewSource(53))
		for i := 0; i < 2000; i++ {
			addr := base + uint64(8*rng.Intn(512))
			switch i % 4 {
			case 0:
				fused.ArrayAccess(addr, 8)
				expanded.Step(OpArrayElem, 1)
				expanded.Step(OpBoundsCheck, 1)
				expanded.Access(addr, 8)
			case 1:
				// Element sizes that span lines must fall back identically.
				fused.ArrayAccess(addr|61, 8)
				expanded.Step(OpArrayElem, 1)
				expanded.Step(OpBoundsCheck, 1)
				expanded.Access(addr|61, 8)
			case 2:
				fused.FieldAccess(addr)
				expanded.Step(OpField, 1)
				expanded.Access(addr, 8)
			case 3:
				fused.StaticAccess(addr)
				expanded.Step(OpStatic, 1)
				expanded.Access(addr, 8)
			}
		}
		sameBits(t, "fused vs expanded (env="+env+")", fused, expanded)
	}
}

// TestReportRowOrderDeterministic is the regression test for the unstable
// Report sort: ops with equal counts must render in op-index order, every
// time, so the report is a pure function of the counters.
func TestReportRowOrderDeterministic(t *testing.T) {
	m := NewMeter(DefaultCosts())
	// Three distinct ops, identical counts — the tie the old sort.Slice
	// comparator left to the sorter's whim.
	for _, op := range []Op{OpStatic, OpArithInt, OpLocal} {
		m.Step(op, 7)
	}
	m.Step(OpCall, 9)
	want := m.Report()
	for i := 0; i < 20; i++ {
		if got := m.Report(); got != want {
			t.Fatalf("Report changed between calls:\n%s\nvs\n%s", got, want)
		}
	}
	lines := strings.Split(strings.TrimSpace(want), "\n")
	if len(lines) != 5 {
		t.Fatalf("report = %q, want header + 4 rows", want)
	}
	// Highest count first, then the tied trio in op-index order.
	wantOrder := []Op{OpCall, OpArithInt, OpLocal, OpStatic}
	if OpArithInt > OpLocal || OpLocal > OpStatic {
		t.Fatal("test assumes OpArithInt < OpLocal < OpStatic; adjust wantOrder")
	}
	for i, op := range wantOrder {
		if !strings.Contains(lines[i+1], op.String()) {
			t.Errorf("row %d = %q, want op %v", i, lines[i+1], op)
		}
	}
}
