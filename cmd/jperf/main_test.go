package main

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"jepo/internal/cliconfig"
	"jepo/internal/minijava/interp"
)

// testShared parses a cliconfig set with the given pool width; the dist
// group stays at its defaults (workers=1) so runs stay in-process.
func testShared(t *testing.T, jobs int) *cliconfig.Set {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	s := cliconfig.Register(fs, cliconfig.FeatEngine|cliconfig.FeatJobs|cliconfig.FeatDist)
	if err := fs.Parse([]string{"-jobs", strconv.Itoa(jobs)}); err != nil {
		t.Fatal(err)
	}
	return s
}

func writeDemo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := `class Demo {
	public static void main(String[] args) {
		int s = 0;
		for (int i = 0; i < 2000; i++) { s += i % 7; }
		System.out.println(s);
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "Demo.java"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunMeasures(t *testing.T) {
	dir := writeDemo(t)
	if err := run(context.Background(), "", 4, true, interp.EngineVM, testShared(t, 2), []string{dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "", 3, false, interp.EngineAST, testShared(t, 1), []string{filepath.Join(dir, "Demo.java")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "", 3, true, interp.EngineVM, testShared(t, 1), nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run(context.Background(), "", 3, true, interp.EngineVM, testShared(t, 1), []string{"missing.java"}); err == nil {
		t.Error("missing file accepted")
	}
	dir := writeDemo(t)
	if err := run(context.Background(), "NoSuchClass", 3, true, interp.EngineVM, testShared(t, 1), []string{dir}); err == nil {
		t.Error("unknown main class accepted")
	}
	bad := t.TempDir()
	os.WriteFile(filepath.Join(bad, "Bad.java"), []byte("class {"), 0o644)
	if err := run(context.Background(), "", 3, true, interp.EngineVM, testShared(t, 1), []string{bad}); err == nil {
		t.Error("syntax error accepted")
	}
	empty := t.TempDir()
	if err := run(context.Background(), "", 3, true, interp.EngineVM, testShared(t, 1), []string{empty}); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestPassesBenchWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_passes.json")
	if err := runBenchCmd(context.Background(), []string{"-passes", "-r", "1", "-o", out}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep passesReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 || rep.CorpusFiles == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	for _, pt := range rep.Benchmarks {
		if pt.NsPerOp <= 0 || pt.Diagnostics == 0 {
			t.Errorf("degenerate benchmark point: %+v", pt)
		}
	}
	if rep.Speedup <= 0 {
		t.Errorf("speedup = %v", rep.Speedup)
	}
}

func TestRunOnceDeterministic(t *testing.T) {
	dir := writeDemo(t)
	files, err := parseArgs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := interp.Load(files...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := runOnce(prog, "", interp.EngineVM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOnce(prog, "", interp.EngineVM)
	if err != nil {
		t.Fatal(err)
	}
	if a.pkg != b.pkg || a.cycles != b.cycles {
		t.Errorf("simulated runs diverged: %+v vs %+v", a, b)
	}
	if a.pkg <= 0 || a.elapsed <= 0 {
		t.Errorf("degenerate measurement: %+v", a)
	}
	// Both engines must report bit-identical simulated energy.
	c, err := runOnce(prog, "", interp.EngineAST)
	if err != nil {
		t.Fatal(err)
	}
	if a.pkg != c.pkg || a.cycles != c.cycles {
		t.Errorf("engines diverged: vm %+v vs ast %+v", a, c)
	}
}
