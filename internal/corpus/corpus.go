// Package corpus generates the WEKA-shaped mini-Java project the JEPO
// pipeline operates on. The real validation refactored WEKA (3,373 classes);
// since WEKA itself is Java, this reproduction generates a corpus with the
// same *shape*: a shared weka.core-style library of several hundred classes
// across ~40 packages plus per-classifier dependency closures sized to the
// paper's Table II, seeded with the energy-inefficient idioms of Table I at
// calibrated rates so the refactorer's change counts land near Table IV's
// "Changes" column.
//
// The generator is fully deterministic for a given seed. Every generated
// file parses and loads; the per-classifier hot kernels (kernels.go) also
// execute on the interpreter against airlines-derived data.
package corpus

import (
	"fmt"
	"strings"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/parser"
)

// Classifiers lists the ten Table II/IV rows in paper order.
var Classifiers = []string{
	"J48", "RandomTree", "RandomForest", "REPTree", "NaiveBayes",
	"Logistic", "SMO", "SGD", "KStar", "IBk",
}

// classSpec configures the per-classifier extra closure beyond the shared
// core: number of helper classes, how many dedicated packages they span, and
// the total count of extra refactorable patterns spread across them. These
// knobs are the calibration documented in DESIGN.md: they set the *sizes* to
// Table II and the pattern densities so measured change counts approach
// Table IV; the resulting metrics and improvements are then measured, never
// asserted.
type classSpec struct {
	family        string // weka.classifiers.<family>
	extras        int
	extraPackages int
	extraPatterns int
}

var specs = map[string]classSpec{
	"J48":          {family: "trees", extras: 23, extraPackages: 2, extraPatterns: 217},
	"RandomTree":   {family: "trees", extras: 7, extraPackages: 2, extraPatterns: 49},
	"RandomForest": {family: "trees", extras: 12, extraPackages: 3, extraPatterns: 59},
	"REPTree":      {family: "trees", extras: 7, extraPackages: 2, extraPatterns: 63},
	"NaiveBayes":   {family: "bayes", extras: 7, extraPackages: 1, extraPatterns: 51},
	"Logistic":     {family: "functions", extras: 5, extraPackages: 1, extraPatterns: 51},
	"SMO":          {family: "functions", extras: 16, extraPackages: 4, extraPatterns: 53},
	"SGD":          {family: "functions", extras: 8, extraPackages: 1, extraPatterns: 53},
	"KStar":        {family: "lazy", extras: 10, extraPackages: 2, extraPatterns: 51},
	"IBk":          {family: "lazy", extras: 10, extraPackages: 2, extraPatterns: 51},
}

// coreClasses is the shared library size; with the roots and extras the
// closures land at Table II's 666–684 dependencies.
const coreClasses = 660

// corePackages spans the shared library across weka-style package names.
var corePackages = []string{
	"weka.core", "weka.core.matrix", "weka.core.converters", "weka.core.neighboursearch",
	"weka.core.stemmers", "weka.core.tokenizers", "weka.core.xml", "weka.core.json",
	"weka.filters", "weka.filters.supervised", "weka.filters.unsupervised",
	"weka.estimators", "weka.associations", "weka.attributeSelection",
	"weka.clusterers", "weka.datagenerators", "weka.experiment",
	"weka.classifiers", "weka.classifiers.evaluation", "weka.classifiers.meta",
	"weka.classifiers.misc", "weka.classifiers.rules", "weka.gui",
	"weka.gui.arffviewer", "weka.gui.beans", "weka.gui.boundaryvisualizer",
	"weka.gui.experiment", "weka.gui.explorer", "weka.gui.graphvisualizer",
	"weka.gui.knowledgeflow", "weka.gui.scripting", "weka.gui.sql",
	"weka.gui.treevisualizer", "weka.gui.visualize", "weka.core.expressionlanguage",
	"weka.core.logging", "weka.core.packageManagement", "weka.core.scripting",
	"weka.core.stopwords",
}

// File is one generated compilation unit.
type File struct {
	Path   string
	Source string
}

// Project is a generated corpus for one classifier.
type Project struct {
	Root  string // fully analyzable root class name, e.g. "J48"
	Files []File
}

// Parse parses every file of the project.
func (p *Project) Parse() ([]*ast.File, error) {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		a, err := parser.Parse(f.Path, f.Source)
		if err != nil {
			return nil, fmt.Errorf("corpus: generated file %s does not parse: %w", f.Path, err)
		}
		out = append(out, a)
	}
	return out, nil
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds the corpus for one classifier. The shared core is
// generated from the seed alone, so it is byte-identical across classifiers
// — mirroring how every WEKA classifier shares weka.core.
func Generate(classifier string, seed uint64) (*Project, error) {
	spec, ok := specs[classifier]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown classifier %s", classifier)
	}
	p := &Project{Root: classifier}

	// Shared core.
	core := &rng{s: seed}
	coreNames := make([]string, coreClasses)
	for i := range coreNames {
		coreNames[i] = fmt.Sprintf("Core%03d", i)
	}
	for i := range coreNames {
		pkg := corePackages[i%len(corePackages)]
		next := coreNames[(i+1)%len(coreNames)]
		pattern := patternKind(i % int(numPatterns)) // ≈1 pattern per core class
		src := genClass(core, pkg, coreNames[i], next, pattern, 1)
		p.Files = append(p.Files, File{
			Path:   pathOf(pkg, coreNames[i]),
			Source: src,
		})
	}

	// Per-classifier extras, in dedicated packages.
	extra := &rng{s: seed ^ hashName(classifier)}
	extraNames := make([]string, spec.extras)
	for i := range extraNames {
		extraNames[i] = fmt.Sprintf("%sHelper%02d", classifier, i)
	}
	perClass := 0
	if spec.extras > 0 {
		perClass = spec.extraPatterns / spec.extras
	}
	rem := spec.extraPatterns - perClass*spec.extras
	for i, name := range extraNames {
		pkg := fmt.Sprintf("weka.classifiers.%s.%s%d",
			spec.family, strings.ToLower(classifier), i%spec.extraPackages)
		next := coreNames[0]
		if i+1 < len(extraNames) {
			next = extraNames[i+1]
		}
		n := perClass
		if i < rem {
			n++
		}
		src := genClass(extra, pkg, name, next, patternKind(i%int(numPatterns)), n)
		p.Files = append(p.Files, File{Path: pathOf(pkg, name), Source: src})
	}

	// Root classifier class referencing the extras chain and the core.
	rootPkg := "weka.classifiers." + spec.family
	first := coreNames[0]
	if len(extraNames) > 0 {
		first = extraNames[0]
	}
	rootSrc := genRootClass(extra, rootPkg, classifier, first, coreNames[0])
	p.Files = append(p.Files, File{Path: pathOf(rootPkg, classifier), Source: rootSrc})

	// The executable hot kernel for Table IV (see kernels.go).
	if k, ok := kernels[classifier]; ok {
		p.Files = append(p.Files, File{
			Path:   pathOf(rootPkg, classifier+"Kernel"),
			Source: k,
		})
	}
	return p, nil
}

func pathOf(pkg, class string) string {
	return strings.ReplaceAll(pkg, ".", "/") + "/" + class + ".java"
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
