package interp

import (
	"strings"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/parser"
)

// loadOnly parses and loads src without executing anything, so tests can
// inspect the resolver's AST annotations.
func loadOnly(t *testing.T, src string) (*Program, *ast.File) {
	t.Helper()
	f, err := parser.Parse("resolve.java", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return prog, f
}

// findMethodDecl locates a method AST node by name.
func findMethodDecl(t *testing.T, f *ast.File, class, method string) *ast.Method {
	t.Helper()
	for _, c := range f.Classes {
		if c.Name != class {
			continue
		}
		for _, m := range c.Methods {
			if m.Name == method {
				return m
			}
		}
	}
	t.Fatalf("method %s.%s not found", class, method)
	return nil
}

func TestResolveAssignsDistinctSlots(t *testing.T) {
	_, f := loadOnly(t, `class B {
		static int f(int a, int b) {
			int x = a + b;
			int y = x * 2;
			for (int i = 0; i < 3; i++) { y = y + i; }
			return y;
		}
	}`)
	m := findMethodDecl(t, f, "B", "f")
	// Params a,b take slots 0,1; locals x,y,i get three more.
	if m.NSlots != 5 {
		t.Errorf("NSlots = %d, want 5", m.NSlots)
	}
	// Distinct names must never share a slot.
	seen := map[int32]string{}
	var walk func(s ast.Stmt)
	record := func(name string, slot int32) {
		if slot == 0 {
			t.Errorf("local %s left unresolved", name)
			return
		}
		if prev, dup := seen[slot]; dup && prev != name {
			t.Errorf("slot %d shared by %s and %s", slot, prev, name)
		}
		seen[slot] = name
	}
	walk = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.Block:
			for _, st := range n.Stmts {
				walk(st)
			}
		case *ast.LocalVar:
			record(n.Name, n.Slot)
		case *ast.For:
			if n.Init != nil {
				walk(n.Init)
			}
			walk(n.Body)
		}
	}
	walk(m.Body)
	if len(seen) != 3 {
		t.Errorf("found %d distinct local slots, want 3 (x, y, i)", len(seen))
	}
}

// Locals are dynamically scoped within the frame: on a loop's first
// iteration an identifier can execute before its declaration statement has
// run, and must resolve to the instance field or static of the same name.
func TestResolveUseBeforeDeclareFallsBack(t *testing.T) {
	v, _ := runProgram(t, `class B {
		static int x = 40;
		static int f() {
			int s = 0;
			for (int i = 0; i < 2; i++) {
				s = s + x;    // iteration 0: static x (40); iteration 1: local x (1)
				int x = 1;
			}
			return s;
		}
	}`, "B", "f")
	if v.I != 41 {
		t.Errorf("got %d, want 41 (static read then local read)", v.I)
	}
}

// A name that is an instance field in the enclosing class must not be
// slot-bound in a static method, because static methods can execute with a
// this reference (obj.staticMethod()), where the field ladder applies.
func TestResolveStaticShadowedByMultipleClasses(t *testing.T) {
	// n is a static in both A and B, so the resolver must NOT pin it to a
	// slot pointer: statics resolve through the frame's dynamic class.
	// B.geta() invokes the inherited get() with frame class B, so even the
	// read written inside A sees B.n — the seed interpreter's semantics,
	// preserved bit-for-bit by the resolver's multiStatic conservatism.
	v, _ := runProgram(t, `class A { static int n = 1; static int get() { return n; } }
	class B extends A { static int n = 2; static int geta() { return get(); } static int getb() { return n; } }
	class T { static int f() { return B.geta() * 10 + B.getb(); } }`, "T", "f")
	if v.I != 22 {
		t.Errorf("got %d, want 22 (frame class B makes both reads see B.n=2)", v.I)
	}
}

func TestResolveInheritedFieldSlots(t *testing.T) {
	v, _ := runProgram(t, `class A { int a; int sum() { return a; } }
	class B extends A { int b; int total() { return sum() + b; } }
	class T { static int f() {
		B o = new B();
		o.a = 7; o.b = 30;
		return o.total();
	} }`, "T", "f")
	if v.I != 37 {
		t.Errorf("got %d, want 37", v.I)
	}
}

func TestResolveCallSitesPinned(t *testing.T) {
	prog, f := loadOnly(t, `class B {
		static int twice(int x) { return x + x; }
		static int f() { return B.twice(4) + twice(3); }
	}`)
	if len(prog.sites) == 0 {
		t.Fatal("no call sites recorded")
	}
	pinned := 0
	for i := range prog.sites {
		if prog.sites[i].kind == siteStaticCall {
			pinned++
		}
	}
	if pinned != 1 {
		t.Errorf("pinned static call sites = %d, want 1 (the qualified B.twice)", pinned)
	}
	m := findMethodDecl(t, f, "B", "f")
	if m.NSlots != 0 {
		t.Errorf("f has no locals, NSlots = %d", m.NSlots)
	}
}

// Re-loading the same AST must fully overwrite every annotation, not
// accumulate stale site indices.
func TestResolveReloadIsIdempotent(t *testing.T) {
	f, err := parser.Parse("reload.java", `class B {
		static int g() { return 2; }
		static int f() { int a = B.g(); return a + B.g(); }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(p1.sites)
	p2, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.sites) != n1 {
		t.Errorf("site table grew across reload: %d then %d", n1, len(p2.sites))
	}
	in := New(p2, energy.NewMeter(energy.DefaultCosts()))
	v, err := in.CallStatic("B", "f")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 4 {
		t.Errorf("got %d, want 4", v.I)
	}
}

func TestBindCoercesHostValues(t *testing.T) {
	src := `class C {
		static double rate;
		static int count;
		static int[] data;
		static double f() { return rate * count + data[0]; }
	}`
	f, err := parser.Parse("bind.java", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()))
	if err := in.InitStatics(); err != nil {
		t.Fatal(err)
	}
	// An int value bound to a double field must be converted, and vice versa.
	if err := in.Bind("C", "rate", IntVal(3)); err != nil {
		t.Fatalf("bind int->double: %v", err)
	}
	if err := in.Bind("C", "count", DoubleVal(4)); err != nil {
		t.Fatalf("bind double->int: %v", err)
	}
	arr := in.NewIntArray([]int64{5})
	if err := in.Bind("C", "data", arr); err != nil {
		t.Fatalf("bind array: %v", err)
	}
	v, err := in.CallStatic("C", "f")
	if err != nil {
		t.Fatal(err)
	}
	if v.K != KDouble || v.D != 17 {
		t.Errorf("got %v %v, want double 17", v.K, v.D)
	}
	// Binding a non-numeric value to a numeric field must error.
	if err := in.Bind("C", "count", NullVal()); err == nil {
		t.Error("bind null->int accepted")
	}
}

// Frames come from a pool and are released by defer, so a mini-Java
// exception unwinding through nested calls must leave the pool balanced:
// repeated throwing calls must not grow allocation.
func TestFramePoolSurvivesExceptions(t *testing.T) {
	src := `class B {
		static int depth(int n) {
			if (n == 0) { throw new RuntimeException("boom"); }
			return depth(n - 1);
		}
		static int f() {
			int caught = 0;
			for (int i = 0; i < 50; i++) {
				try { depth(10); } catch (RuntimeException e) { caught++; }
			}
			return caught;
		}
	}`
	v, in := runProgram(t, src, "B", "f")
	if v.I != 50 {
		t.Fatalf("caught = %d, want 50", v.I)
	}
	// After unwinding, every pooled frame slice must have been returned:
	// run the same workload again on the same interpreter and confirm the
	// free list served it (pool is LIFO; depth 11 chain + f's frame).
	if len(in.framePool) == 0 {
		t.Error("frame pool empty after exception unwinding; defers leaked frames")
	}
	before := len(in.framePool)
	if _, err := in.CallStatic("B", "f"); err != nil {
		t.Fatal(err)
	}
	if len(in.framePool) != before {
		t.Errorf("frame pool drifted across runs: %d then %d", before, len(in.framePool))
	}
}

func TestResolveDiagnosticsUnchanged(t *testing.T) {
	// Unknown identifiers must still produce the original error shape.
	f, err := parser.Parse("bad.java", `class B { static int f() { return nosuch; } }`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	in := New(prog, energy.NewMeter(energy.DefaultCosts()))
	_, err = in.CallStatic("B", "f")
	if err == nil || !strings.Contains(err.Error(), "unknown identifier") {
		t.Errorf("err = %v, want unknown identifier", err)
	}
}
