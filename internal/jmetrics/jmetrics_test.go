package jmetrics

import (
	"strings"
	"testing"

	"jepo/internal/minijava/parser"
)

func mkProject(t *testing.T, sources map[string]string) *Project {
	t.Helper()
	var files []SourceFile
	for path, src := range sources {
		f, err := parser.Parse(path, src)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		files = append(files, SourceFile{AST: f, Source: src})
	}
	return NewProject(files)
}

func sample(t *testing.T) *Project {
	return mkProject(t, map[string]string{
		"a/Root.java": `package pkg.a;
class Root extends Base {
	int x;
	Helper h;
	void go() {
		Util.ping();
		Helper local = new Helper();
	}
}`,
		"a/Base.java": `package pkg.a;
class Base {
	int b1;
	int b2;
	void base() { }
}`,
		"b/Helper.java": `package pkg.b;
class Helper {
	String name;
	int probe() { return 1; }
	void touch(Util u) { }
}`,
		"b/Util.java": `package pkg.b;
class Util {
	static int hits;
	static void ping() { hits++; }
}`,
		"c/Island.java": `package pkg.c;
class Island {
	int alone;
	void nothing() { }
}`,
	})
}

func TestClosureFollowsAllReferenceKinds(t *testing.T) {
	p := sample(t)
	closure, err := p.Closure("Root")
	if err != nil {
		t.Fatal(err)
	}
	// Root → Base (extends), Helper (field + new), Util (static call);
	// Helper → Util (param). Island unreachable.
	want := []string{"Base", "Helper", "Root", "Util"}
	if strings.Join(closure, ",") != strings.Join(want, ",") {
		t.Errorf("closure = %v, want %v", closure, want)
	}
}

func TestMeasureTotals(t *testing.T) {
	p := sample(t)
	m, err := p.Measure("Root")
	if err != nil {
		t.Fatal(err)
	}
	if m.Dependencies != 4 {
		t.Errorf("dependencies = %d, want 4", m.Dependencies)
	}
	// Fields: Root 2 + Base 2 + Helper 1 + Util 1 = 6.
	if m.Attributes != 6 {
		t.Errorf("attributes = %d, want 6", m.Attributes)
	}
	// Methods: Root 1 + Base 1 + Helper 2 + Util 1 = 5.
	if m.Methods != 5 {
		t.Errorf("methods = %d, want 5", m.Methods)
	}
	if m.Packages != 2 {
		t.Errorf("packages = %d, want 2 (pkg.a, pkg.b)", m.Packages)
	}
	if m.LOC <= 0 {
		t.Errorf("LOC = %d", m.LOC)
	}
}

func TestMeasureIsland(t *testing.T) {
	p := sample(t)
	m, err := p.Measure("Island")
	if err != nil {
		t.Fatal(err)
	}
	if m.Dependencies != 1 || m.Packages != 1 || m.Methods != 1 {
		t.Errorf("island metrics = %+v", m)
	}
}

func TestUnknownRoot(t *testing.T) {
	p := sample(t)
	if _, err := p.Closure("Ghost"); err == nil {
		t.Error("unknown root accepted")
	}
	if _, err := p.Measure("Ghost"); err == nil {
		t.Error("unknown root accepted by Measure")
	}
}

func TestBuiltinReferencesIgnored(t *testing.T) {
	p := mkProject(t, map[string]string{
		"X.java": `package x;
class X {
	String s;
	void f() {
		StringBuilder sb = new StringBuilder();
		Integer v = Integer.valueOf(3);
		System.arraycopy(null, 0, null, 0, 0);
	}
}`,
	})
	m, err := p.Measure("X")
	if err != nil {
		t.Fatal(err)
	}
	if m.Dependencies != 1 {
		t.Errorf("builtins leaked into closure: deps = %d", m.Dependencies)
	}
}

func TestLOCCountsNonBlankLines(t *testing.T) {
	if got := countLOC("a\n\nb\n   \nc\n"); got != 3 {
		t.Errorf("countLOC = %d, want 3", got)
	}
	if got := countLOC(""); got != 0 {
		t.Errorf("countLOC(\"\") = %d", got)
	}
}

func TestNumClassesAndTable(t *testing.T) {
	p := sample(t)
	if p.NumClasses() != 5 {
		t.Errorf("classes = %d", p.NumClasses())
	}
	m, _ := p.Measure("Root")
	out := Table([]Metrics{m})
	if !strings.Contains(out, "Root") || !strings.Contains(out, "Dependencies") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestCyclicReferencesTerminate(t *testing.T) {
	p := mkProject(t, map[string]string{
		"A.java": `package p; class A { B b; }`,
		"B.java": `package p; class B { A a; }`,
	})
	m, err := p.Measure("A")
	if err != nil {
		t.Fatal(err)
	}
	if m.Dependencies != 2 {
		t.Errorf("cyclic closure = %d, want 2", m.Dependencies)
	}
}

func TestMultiClassFileSplitsLOC(t *testing.T) {
	p := mkProject(t, map[string]string{
		"Two.java": `package p;
class First { int a; }
class Second { int b; }`,
	})
	m1, _ := p.Measure("First")
	m2, _ := p.Measure("Second")
	if m1.LOC != m2.LOC {
		t.Errorf("shared-file LOC split unevenly: %d vs %d", m1.LOC, m2.LOC)
	}
}
