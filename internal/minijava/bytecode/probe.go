package bytecode

// InjectProbes splices PROBE_ENTER / PROBE_EXIT opcodes around a compiled
// body — the bytecode analogue of the Javassist injection the paper performs
// on real class files. The entry probe is prepended (all jumps are relative,
// so the shift is free) and every return is rewritten into a jump to a probe
// epilogue, one per return shape (value return, explicit `return;`, implicit
// fall-off), keeping a single exit opcode per shape so the disassembly stays
// readable. Probe opcodes charge nothing: the delta between an instrumented
// AST run and an instrumented VM run is the measurable probe overhead.
//
// Exception unwinds bypass the epilogues; the VM fires the exit hook from a
// recover handler when a mini-Java exception leaves a probed frame (see
// interp's probed invoke), mirroring the finally block of the AST-level
// instrumentation.
func InjectProbes(fn *Func, label string) {
	code := make([]Instr, len(fn.Code)+1)
	code[0] = Instr{Op: OpProbeEnter}
	copy(code[1:], fn.Code)

	// One epilogue per return shape that actually occurs. OpRetVoid's B
	// distinguishes explicit `return;` (B=1) from falling off the end (B=0);
	// the distinction controls return-value coercion, so it survives the
	// rewrite.
	needVal, needExpl, needImpl := false, false, false
	for i := 1; i < len(code); i++ {
		switch code[i].Op {
		case OpRet:
			needVal = true
		case OpRetVoid:
			if code[i].B != 0 {
				needExpl = true
			} else {
				needImpl = true
			}
		}
	}
	valEpi, explEpi, implEpi := -1, -1, -1
	next := len(code)
	if needVal {
		valEpi = next
		next += 2
	}
	if needExpl {
		explEpi = next
		next += 2
	}
	if needImpl {
		implEpi = next
	}
	for i := 1; i < len(code); i++ {
		switch code[i].Op {
		case OpRet:
			code[i] = Instr{Op: OpJmp, Steps: code[i].Steps, A: int32(valEpi - i)}
		case OpRetVoid:
			epi := implEpi
			if code[i].B != 0 {
				epi = explEpi
			}
			code[i] = Instr{Op: OpJmp, Steps: code[i].Steps, A: int32(epi - i)}
		}
	}
	if needVal {
		code = append(code, Instr{Op: OpProbeExit}, Instr{Op: OpRet})
	}
	if needExpl {
		code = append(code, Instr{Op: OpProbeExit}, Instr{Op: OpRetVoid, B: 1})
	}
	if needImpl {
		code = append(code, Instr{Op: OpProbeExit}, Instr{Op: OpRetVoid})
	}
	fn.Code = code
	fn.Probe = label
}
