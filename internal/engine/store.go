package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// store is the bounded, concurrency-safe artifact cache: a map plus an LRU
// list capped at capacity entries. Artifacts are deterministic values keyed
// by content hash, so eviction is purely a cost decision — re-deriving an
// evicted artifact reproduces it bit for bit.
type store struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*list.Element
	order    *list.List // front = most recently used

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type entry struct {
	key Key
	val any
}

func newStore(capacity int) *store {
	return &store{
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		order:    list.New(),
	}
}

// get returns the cached artifact and marks it recently used.
func (s *store) get(k Key) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	s.hits.Add(1)
	return el.Value.(*entry).val, true
}

// put inserts an artifact, evicting the least recently used entries beyond
// capacity. Racing puts of the same key keep the first value; with
// deterministic artifacts both candidates are identical, so which one
// survives is unobservable.
func (s *store) put(k Key, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.entries[k] = s.order.PushFront(&entry{key: k, val: v})
	for s.order.Len() > s.capacity {
		el := s.order.Back()
		s.order.Remove(el)
		delete(s.entries, el.Value.(*entry).key)
		s.evictions.Add(1)
	}
}

func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}
