// Package core is JEPO — the Java Energy Profiler & Optimizer that is the
// paper's primary contribution — reimplemented as a library. The Eclipse
// plugin surface maps onto four entry points:
//
//   - Suggest: the optimizer's static analysis (Table I rules; Figs. 2, 5)
//   - Optimize: automatic application of the suggestions (the refactoring
//     the paper's §VIII validation performed on WEKA)
//   - Profile: method-granularity energy measurement via injected RAPL
//     probes (Fig. 4 and result.txt)
//   - Metrics: the dependency/attribute/method/package/LOC analysis of
//     Table II
//
// Measurements run against real powercap RAPL counters when the host exposes
// them, and against the calibrated simulator otherwise.
//
// Every entry point routes its parse/compile/measure stages through the
// content-addressed artifact engine (internal/engine), so repeated work over
// unchanged sources is served from cache with bit-identical results.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"jepo/internal/energy"
	"jepo/internal/engine"
	"jepo/internal/jmetrics"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/profile"
	"jepo/internal/rapl"
	"jepo/internal/refactor"
	"jepo/internal/suggest"
)

// Project is a set of Java sources keyed by path.
type Project map[string]string

// ParseProject parses every file, in deterministic path order, through the
// process-wide artifact engine: unchanged files are clone checkouts of
// cached masters rather than fresh parses.
func ParseProject(p Project) ([]*ast.File, error) {
	return engine.Default().ParseAll(engine.Sources(p))
}

// Suggest runs the Table I analysis over one source file.
func Suggest(path, source string) ([]suggest.Suggestion, error) {
	f, err := engine.Default().ParseFile(path, source)
	if err != nil {
		return nil, err
	}
	return suggest.Analyze(f), nil
}

// SuggestProject runs the analysis over a whole project.
func SuggestProject(p Project) ([]suggest.Suggestion, error) {
	files, err := ParseProject(p)
	if err != nil {
		return nil, err
	}
	return suggest.AnalyzeAll(files), nil
}

// OptimizerView renders the Fig. 5 table: class, line, suggestion.
func OptimizerView(sugs []suggest.Suggestion) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %6s  %s\n", "Class", "Line", "Suggestion")
	for _, s := range sugs {
		fmt.Fprintf(&sb, "%-32s %6d  %s — %s\n", s.Class, s.Line, s.Rule.Component(), s.Rule.Text())
	}
	if len(sugs) == 0 {
		sb.WriteString("(no suggestions — the file already follows the Table I guidance)\n")
	}
	return sb.String()
}

// DynamicView renders the Fig. 2 view for the file the developer is editing:
// suggestions near the cursor line first.
func DynamicView(sugs []suggest.Suggestion, cursorLine int) string {
	ordered := append([]suggest.Suggestion(nil), sugs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		di := abs(ordered[i].Line - cursorLine)
		dj := abs(ordered[j].Line - cursorLine)
		return di < dj
	})
	var sb strings.Builder
	sb.WriteString("JEPO suggestions (nearest to cursor first):\n")
	for _, s := range ordered {
		fmt.Fprintf(&sb, "  line %d: [%s] %s\n", s.Line, s.Rule.Component(), s.Rule.Text())
	}
	return sb.String()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// optimized is Optimize's cached artifact. Shared across calls; read-only.
type optimized struct {
	Out Project
	Res *refactor.Result
}

// Optimize applies the (selected, default all) Table I refactorings to a
// project, returning the rewritten sources and the change report. The result
// is a cached artifact keyed by the project bytes and the rule selection.
// The rewrite itself is pure parse-and-print work, so ctx is only consulted
// between stages; a cancelled context aborts before the rebuild.
func Optimize(ctx context.Context, p Project, rules ...suggest.Rule) (Project, *refactor.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	eng := engine.Default()
	srcs := engine.Sources(p)
	h := engine.NewKey("core/optimize")
	h.Int(int64(len(rules)))
	for _, r := range rules {
		h.Int(int64(r))
	}
	for _, s := range srcs {
		h.Str(s.Path).Str(s.Source)
	}
	v, err := eng.Memo(h.Key(), func() (any, error) {
		files, err := eng.ParseAll(srcs)
		if err != nil {
			return nil, err
		}
		res := refactor.Apply(files, rules...)
		out := make(Project, len(files))
		for _, f := range files {
			out[f.Path] = ast.Print(f)
		}
		return &optimized{Out: out, Res: res}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	o := v.(*optimized)
	return o.Out, o.Res, nil
}

// ProfileResult is the outcome of a profiled run.
type ProfileResult struct {
	Profiler *profile.Profiler
	Stdout   string        // what the program printed
	Sample   energy.Sample // whole-run totals from the meter
}

// View renders the Fig. 4 profiler table.
func (r *ProfileResult) View() string { return r.Profiler.View() }

// ProfileConfig configures a profiled run.
type ProfileConfig struct {
	// MainClass selects the class whose main method runs; empty means the
	// unique main class ("if there is more than one, then we take user
	// input", says §VII — the CLI exposes this as a flag).
	MainClass string
	// MaxOps bounds interpretation (0 = default 500M).
	MaxOps int64
	// Costs overrides the cost table (zero value = DefaultCosts).
	Costs *energy.CostTable
	// Engine selects the execution engine (zero value = bytecode VM).
	Engine interp.Engine
	// Cache selects the artifact engine (nil = engine.Default()).
	Cache *engine.Engine
}

// Profile instruments every method of the project with JEPO.enter/exit
// probes, executes the main class, and returns per-execution measurements —
// the library form of the "JEPO profiler" pop-up action. The instrumented
// program is a cached artifact; the profiler itself runs live because its
// hook observes the interpreter as it executes. Cancelling ctx aborts the
// run mid-interpretation and returns ctx's error.
func Profile(ctx context.Context, p Project, cfg ProfileConfig) (*ProfileResult, error) {
	eng := cfg.Cache
	if eng == nil {
		eng = engine.Default()
	}
	prog, err := eng.Program(engine.Sources(p), true)
	if err != nil {
		return nil, err
	}
	costs := energy.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	meter := energy.NewMeter(costs)
	src := rapl.NewSimSource(meter)
	prof := profile.New(src, func() time.Duration { return meter.Snapshot().Elapsed })
	maxOps := cfg.MaxOps
	if maxOps == 0 {
		maxOps = 500_000_000
	}
	in := interp.New(prog, meter, interp.WithHook(prof), interp.WithMaxOps(maxOps), interp.WithEngine(cfg.Engine), interp.WithContext(ctx))
	if err := in.RunMain(cfg.MainClass); err != nil {
		return nil, err
	}
	if err := prof.Err(); err != nil {
		return nil, err
	}
	return &ProfileResult{
		Profiler: prof,
		Stdout:   in.Output(),
		Sample:   meter.Snapshot(),
	}, nil
}

// Metrics computes the Table II row for a root class over the project.
func Metrics(p Project, root string) (jmetrics.Metrics, error) {
	files, err := ParseProject(p)
	if err != nil {
		return jmetrics.Metrics{}, err
	}
	srcs := make([]jmetrics.SourceFile, len(files))
	for i, f := range files {
		srcs[i] = jmetrics.SourceFile{AST: f, Source: p[f.Path]}
	}
	return jmetrics.NewProject(srcs).Measure(root)
}
