// Package classify is the WEKA substrate: from-scratch implementations of
// the ten classifiers the paper's Table II/IV evaluate — J48 (C4.5),
// RandomTree, RandomForest, REPTree, NaiveBayes, Logistic (ridge), SMO, SGD,
// KStar and IBk — over the dataset package's instances, plus stratified
// cross-validation in the eval subpackage.
//
// Every classifier supports a single-precision mode in which key numeric
// accumulations are rounded through float32. This reproduces the paper's
// accuracy-drop mechanism: its Table IV notes "there was precision loss when
// we changed double to float or long to int".
package classify

import (
	"jepo/internal/dataset"
)

// Classifier is the common training/prediction interface.
type Classifier interface {
	// Name is the WEKA-style display name.
	Name() string
	// Train fits the model to the dataset.
	Train(d *dataset.Dataset) error
	// Predict returns the predicted class index for a row laid out in the
	// training schema (the class cell is ignored).
	Predict(row []float64) int
}

// FP controls numeric precision. The zero value is double precision; Single
// rounds accumulations through float32, reproducing a double→float refactor.
type FP bool

// Precision modes.
const (
	Double FP = false
	Single FP = true
)

// R rounds a value according to the precision mode.
func (fp FP) R(x float64) float64 {
	if fp {
		return float64(float32(x))
	}
	return x
}

// Options configure classifier construction.
type Options struct {
	Seed uint64
	FP   FP
}

// RNG is the deterministic generator shared by the randomized classifiers.
type RNG struct{ s uint64 }

// NewRNG seeds a generator (seed 0 is remapped to a fixed constant).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Next returns the next 64 random bits (SplitMix64).
func (r *RNG) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Next()>>11) / float64(1<<53) }

// Encoder maps dataset rows to dense feature vectors: numeric attributes are
// standardized, nominal attributes are one-hot encoded. The linear models
// (Logistic, SGD, SMO) share it.
type Encoder struct {
	attrs    []*dataset.Attribute
	classIdx int
	offsets  []int // feature offset per attribute (-1 for the class)
	dim      int
	mean     []float64 // per numeric attr
	std      []float64
}

// NewEncoder builds an encoder for the dataset's schema and fits the numeric
// standardization to its rows.
func NewEncoder(d *dataset.Dataset) *Encoder {
	e := &Encoder{attrs: d.Attrs, classIdx: d.ClassIdx}
	e.offsets = make([]int, len(d.Attrs))
	e.mean = make([]float64, len(d.Attrs))
	e.std = make([]float64, len(d.Attrs))
	for j, a := range d.Attrs {
		if j == d.ClassIdx {
			e.offsets[j] = -1
			continue
		}
		e.offsets[j] = e.dim
		if a.Kind == dataset.Nominal {
			e.dim += a.NumValues()
		} else {
			m, s, _ := d.NumericStats(j, -1)
			if s == 0 {
				s = 1
			}
			e.mean[j], e.std[j] = m, s
			e.dim++
		}
	}
	return e
}

// Dim is the encoded feature dimension.
func (e *Encoder) Dim() int { return e.dim }

// Encode writes the feature vector for row into out (len Dim).
func (e *Encoder) Encode(row []float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for j, a := range e.attrs {
		if j == e.classIdx {
			continue
		}
		off := e.offsets[j]
		if a.Kind == dataset.Nominal {
			v := int(row[j])
			if v >= 0 && v < a.NumValues() {
				out[off+v] = 1
			}
			continue
		}
		out[off] = (row[j] - e.mean[j]) / e.std[j]
	}
}

// EncodeAll encodes every row of d into a dense matrix plus class labels.
func (e *Encoder) EncodeAll(d *dataset.Dataset) ([][]float64, []int) {
	x := make([][]float64, d.NumInstances())
	y := make([]int, d.NumInstances())
	flat := make([]float64, d.NumInstances()*e.dim)
	for i, row := range d.X {
		x[i] = flat[i*e.dim : (i+1)*e.dim]
		e.Encode(row, x[i])
		y[i] = d.Class(i)
	}
	return x, y
}

// ArgMax returns the index of the largest value (first on ties).
func ArgMax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
