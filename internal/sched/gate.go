package sched

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by Gate.Acquire when the gate's wait queue is at
// capacity: the caller should shed the request rather than block behind an
// unbounded backlog.
var ErrSaturated = errors.New("sched: gate saturated")

// Gate is the admission-control primitive the service layer puts in front of
// the pool: at most `slots` requests run concurrently, at most `maxQueue`
// more wait their turn, and anything beyond that is rejected immediately
// with ErrSaturated. Waiters are admitted strictly in arrival order, and a
// waiter whose context is cancelled leaves the queue without consuming a
// slot. A Gate does not replace the pool — each admitted request still runs
// its own sched.Map fan-out — it bounds how many such fan-outs exist at once
// so a burst of sessions degrades to queueing, not thrash.
type Gate struct {
	mu      sync.Mutex
	slots   int
	inUse   int
	maxWait int
	waiters []chan struct{} // FIFO; closed channel == admitted
	stats   GateStats
}

// GateStats is a snapshot of gate activity since creation.
type GateStats struct {
	Admitted int // Acquire calls that got a slot (immediately or after waiting)
	Rejected int // Acquire calls shed with ErrSaturated
	Waited   int // admitted calls that had to queue first
	InUse    int // slots held at snapshot time
	Queued   int // waiters at snapshot time
}

// NewGate builds a gate with `slots` concurrent admissions and room for
// `maxQueue` waiting requests. slots < 1 is treated as 1; maxQueue < 0 as 0.
func NewGate(slots, maxQueue int) *Gate {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{slots: slots, maxWait: maxQueue}
}

// Acquire blocks until a slot is free, the context is cancelled, or the
// queue is full. On success it returns a release function that must be
// called exactly once when the request finishes; on failure it returns
// ctx.Err() or ErrSaturated.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	g.mu.Lock()
	if g.inUse < g.slots && len(g.waiters) == 0 {
		g.inUse++
		g.stats.Admitted++
		g.mu.Unlock()
		return g.releaseFunc(), nil
	}
	if len(g.waiters) >= g.maxWait {
		g.stats.Rejected++
		g.mu.Unlock()
		return nil, ErrSaturated
	}
	ticket := make(chan struct{})
	g.waiters = append(g.waiters, ticket)
	g.stats.Waited++
	g.mu.Unlock()

	select {
	case <-ticket:
		// Admitted by a releasing holder, which already moved the slot to us.
		g.mu.Lock()
		g.stats.Admitted++
		g.mu.Unlock()
		return g.releaseFunc(), nil
	case <-ctx.Done():
		g.mu.Lock()
		defer g.mu.Unlock()
		select {
		case <-ticket:
			// Lost the race: admission happened before the cancellation took
			// effect. We hold a slot and must give it back.
			g.stats.Admitted++
			g.releaseLocked()
			return nil, ctx.Err()
		default:
		}
		for i, w := range g.waiters {
			if w == ticket {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				break
			}
		}
		return nil, ctx.Err()
	}
}

// releaseFunc wraps releaseLocked in a sync.Once so double-release is inert.
func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			defer g.mu.Unlock()
			g.releaseLocked()
		})
	}
}

// releaseLocked frees one slot, handing it to the oldest waiter if any.
// Callers hold g.mu.
func (g *Gate) releaseLocked() {
	if len(g.waiters) > 0 {
		ticket := g.waiters[0]
		g.waiters = g.waiters[1:]
		close(ticket) // slot transfers to the waiter; inUse is unchanged
		return
	}
	g.inUse--
}

// Stats returns a snapshot of gate counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.InUse = g.inUse
	s.Queued = len(g.waiters)
	return s
}
