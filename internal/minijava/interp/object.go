package interp

import (
	"strings"

	"jepo/internal/minijava/ast"
)

// Object is an instance of a user-defined class. Field storage is slot-based
// and lives at a synthetic heap address so field accesses exercise the cache
// model.
type Object struct {
	Class *classInfo
	Slots []Value
	Base  uint64
}

// Array is a mini-Java array. Integral and boolean elements live in I,
// floating-point in D, references (strings, objects, nested arrays) in R.
type Array struct {
	Kind Kind // element kind
	Elem ast.Type
	Base uint64
	ES   int // element size in bytes
	I    []int64
	D    []float64
	R    []Value
}

// Len is the array length.
func (a *Array) Len() int {
	switch {
	case a.I != nil:
		return len(a.I)
	case a.D != nil:
		return len(a.D)
	default:
		return len(a.R)
	}
}

// addr is the synthetic address of element i.
func (a *Array) addr(i int) uint64 { return a.Base + uint64(i*a.ES) }

// get reads element i without bounds checking (the interpreter checks).
func (a *Array) get(i int) Value {
	switch a.Kind {
	case KInt, KLong, KShort, KByte, KChar:
		return Value{K: a.Kind, I: a.I[i]}
	case KBool:
		return Value{K: KBool, I: a.I[i]}
	case KFloat, KDouble:
		return Value{K: a.Kind, D: a.D[i]}
	default:
		return a.R[i]
	}
}

// set writes element i without bounds checking.
func (a *Array) set(i int, v Value) {
	switch a.Kind {
	case KInt, KLong, KShort, KByte, KChar, KBool:
		a.I[i] = v.I
	case KFloat, KDouble:
		a.D[i] = v.D
	default:
		a.R[i] = v
	}
}

// SB is a StringBuilder instance.
type SB struct {
	B    strings.Builder
	Base uint64
}

// Box is a wrapper-class instance (Integer, Double, ...). Cached indicates it
// came from the small-integer valueOf cache, which is what makes Integer the
// cheapest wrapper in the paper's Table I.
type Box struct {
	Class  string
	V      Value
	Base   uint64
	Cached bool
}

// Throwable is an exception value. The class hierarchy is modelled by name:
// every *Exception class extends Exception, and the runtime exception names
// below extend RuntimeException.
type Throwable struct {
	Class string
	Msg   string
}

var runtimeExceptions = map[string]bool{
	"RuntimeException":                true,
	"ArithmeticException":             true,
	"ArrayIndexOutOfBoundsException":  true,
	"IndexOutOfBoundsException":       true,
	"NullPointerException":            true,
	"NumberFormatException":           true,
	"IllegalArgumentException":        true,
	"IllegalStateException":           true,
	"UnsupportedOperationException":   true,
	"ClassCastException":              true,
	"NegativeArraySizeException":      true,
	"StringIndexOutOfBoundsException": true,
}

// instanceOf reports whether the throwable matches a catch clause type.
func (t *Throwable) instanceOf(catchType string) bool {
	if catchType == t.Class || catchType == "Throwable" || catchType == "Exception" {
		return true
	}
	if catchType == "RuntimeException" {
		return runtimeExceptions[t.Class]
	}
	if catchType == "IndexOutOfBoundsException" {
		return t.Class == "ArrayIndexOutOfBoundsException" ||
			t.Class == "StringIndexOutOfBoundsException"
	}
	if catchType == "IllegalArgumentException" {
		return t.Class == "NumberFormatException"
	}
	return false
}

// IsExceptionClass reports whether a class name denotes a built-in throwable
// that may be constructed without a user definition.
func IsExceptionClass(name string) bool {
	return name == "Exception" || name == "Throwable" || name == "Error" ||
		strings.HasSuffix(name, "Exception")
}
