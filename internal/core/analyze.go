package core

import (
	"fmt"
	"strings"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/passes"
	"jepo/internal/sched"
)

// Verdict is the measured judgement on one diagnostic's fix.
type Verdict int

const (
	// VerdictAdvisory: the diagnostic carries no mechanical fix.
	VerdictAdvisory Verdict = iota
	// VerdictUnmeasured: the fix exists but could not be measured (no
	// runnable main, the fix made no change when replayed alone, or the
	// rewritten program failed to run).
	VerdictUnmeasured
	// VerdictAccepted: the fix was measured and does not cost energy.
	VerdictAccepted
	// VerdictRejected: the fix was measured to *increase* package energy on
	// this program, so the engine refuses it.
	VerdictRejected
)

func (v Verdict) String() string {
	switch v {
	case VerdictAccepted:
		return "accepted"
	case VerdictRejected:
		return "rejected"
	case VerdictUnmeasured:
		return "unmeasured"
	}
	return "advisory"
}

// AnalyzedDiagnostic is one pass-engine finding plus its measured effect.
type AnalyzedDiagnostic struct {
	passes.Diagnostic
	Verdict Verdict
	// Delta is the package-domain energy saved by applying this fix alone:
	// baseline minus fixed-run energy, so positive means the fix helps.
	// Valid only when Verdict is Accepted or Rejected.
	Delta energy.Joules
	// DeltaPct is Delta as a percentage of the baseline package energy.
	DeltaPct float64
	// Note explains an Unmeasured verdict.
	Note string
}

// AnalysisReport is the outcome of Analyze over a project.
type AnalysisReport struct {
	Diags []AnalyzedDiagnostic
	// Executable reports whether the project ran end-to-end, enabling
	// per-fix measurement; ExecNote says why when it did not.
	Executable bool
	ExecNote   string
	// Baseline is the unmodified program's whole-run measurement.
	Baseline energy.Sample
}

// Accepted lists the diagnostics whose fixes survived measurement.
func (r *AnalysisReport) Accepted() []AnalyzedDiagnostic {
	var out []AnalyzedDiagnostic
	for _, d := range r.Diags {
		if d.Verdict == VerdictAccepted {
			out = append(out, d)
		}
	}
	return out
}

// AnalyzeConfig configures Analyze.
type AnalyzeConfig struct {
	// MainClass selects the entry point (empty = the unique main class).
	MainClass string
	// MaxOps bounds each measurement run (0 = default 500M).
	MaxOps int64
	// Rules restricts the engine to a rule subset (empty = all rules).
	Rules []passes.Rule
	// Costs overrides the simulator cost table (nil = DefaultCosts).
	Costs *energy.CostTable
	// Engine selects the execution engine for the measurement runs
	// (zero value = bytecode VM). Both engines charge identically, so the
	// verdicts do not depend on this; it exists for cross-checking.
	Engine interp.Engine
	// Jobs bounds the worker pool for the per-fix measurements (and, through
	// AnalyzeAll, the per-file fan-out). Each fix re-parses the project and
	// runs on its own interpreter/meter, and verdicts merge in diagnostic
	// order, so the report is bit-identical at any value. <= 0 means 1.
	Jobs int
}

// Analyze is the detect/fix/verify pipeline: it runs every pass over the
// project in one shared traversal per file, and — when the project has a
// runnable main — measures each mechanical fix in isolation by re-parsing
// the project, replaying just that fix, and running the program before and
// after through the interpreter and energy model. Fixes whose measured
// package-energy delta is negative are flagged VerdictRejected rather than
// trusted on the rule's say-so.
//
// The interpreter and meter are deterministic, so a single before/after run
// pair per fix is an exact measurement, and repeated Analyze calls agree.
func Analyze(p Project, cfg AnalyzeConfig) (*AnalysisReport, error) {
	files, err := ParseProject(p)
	if err != nil {
		return nil, err
	}
	diags := passes.AnalyzeFilesRules(files, cfg.Rules...)
	report := &AnalysisReport{Diags: make([]AnalyzedDiagnostic, len(diags))}
	for i, d := range diags {
		v := VerdictAdvisory
		if d.Fix != nil {
			v = VerdictUnmeasured
		}
		report.Diags[i] = AnalyzedDiagnostic{Diagnostic: d, Verdict: v}
	}

	// Baseline run on a fresh parse, so measurement and analysis never share
	// mutable ASTs.
	base, err := ParseProject(p)
	if err != nil {
		return nil, err
	}
	baseline, err := measureRun(base, cfg)
	if err != nil {
		report.ExecNote = err.Error()
		for i := range report.Diags {
			if report.Diags[i].Verdict == VerdictUnmeasured {
				report.Diags[i].Note = "program not runnable"
			}
		}
		return report, nil
	}
	report.Executable = true
	report.Baseline = baseline

	// Each fix measures on its own re-parse and interpreter, so the
	// measurements shard across the pool; verdicts commit in diagnostic
	// order, keeping the report bit-identical at any cfg.Jobs.
	var idxs []int
	for i := range report.Diags {
		if report.Diags[i].Verdict == VerdictUnmeasured {
			idxs = append(idxs, i)
		}
	}
	type fixOutcome struct {
		delta energy.Joules
		note  string
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	_, _, err = sched.MapCommit(sched.Config{Jobs: jobs}, idxs,
		func(_ sched.Task, i int) (fixOutcome, error) {
			delta, note, err := measureFix(p, cfg, i, len(diags), baseline)
			if err != nil {
				return fixOutcome{}, err
			}
			return fixOutcome{delta: delta, note: note}, nil
		},
		func(task sched.Task, out fixOutcome) {
			ad := &report.Diags[idxs[task.Index]]
			if out.note != "" {
				ad.Note = out.note
				return
			}
			ad.Delta = out.delta
			if baseline.Package != 0 {
				ad.DeltaPct = 100 * float64(out.delta) / float64(baseline.Package)
			}
			if out.delta < 0 {
				ad.Verdict = VerdictRejected
			} else {
				ad.Verdict = VerdictAccepted
			}
		})
	if err != nil {
		return nil, err
	}
	return report, nil
}

// measureFix re-parses the project, re-derives the diagnostics (the engine is
// deterministic, so index i names the same finding), applies only fix i, and
// measures the resulting program. A non-empty note means the fix could not be
// measured; an error means the project itself misbehaved.
func measureFix(p Project, cfg AnalyzeConfig, i, want int, baseline energy.Sample) (energy.Joules, string, error) {
	files, err := ParseProject(p)
	if err != nil {
		return 0, "", err
	}
	diags := passes.AnalyzeFilesRules(files, cfg.Rules...)
	if len(diags) != want {
		return 0, "", fmt.Errorf("core: analysis is not deterministic: %d diagnostics, then %d", want, len(diags))
	}
	res := passes.ApplyFixes(files, []passes.Diagnostic{diags[i]})
	if res.Changes == 0 {
		return 0, "fix made no change when replayed alone", nil
	}
	after, err := measureRun(files, cfg)
	if err != nil {
		return 0, "rewritten program failed: " + err.Error(), nil
	}
	return baseline.Package - after.Package, "", nil
}

// measureRun executes the project's main under a fresh meter and returns the
// whole-run sample.
func measureRun(files []*ast.File, cfg AnalyzeConfig) (energy.Sample, error) {
	prog, err := interp.Load(files...)
	if err != nil {
		return energy.Sample{}, err
	}
	costs := energy.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	meter := energy.NewMeter(costs)
	maxOps := cfg.MaxOps
	if maxOps == 0 {
		maxOps = 500_000_000
	}
	in := interp.New(prog, meter, interp.WithMaxOps(maxOps), interp.WithEngine(cfg.Engine))
	if err := in.RunMain(cfg.MainClass); err != nil {
		return energy.Sample{}, err
	}
	return meter.Snapshot(), nil
}

// AnalysisView renders the unified diagnostic view: every finding with its
// rule, whether a mechanical fix exists, and the measured ΔE verdict.
func AnalysisView(r *AnalysisReport) string {
	var sb strings.Builder
	if r.Executable {
		fmt.Fprintf(&sb, "baseline: package=%v core=%v time=%v\n",
			r.Baseline.Package, r.Baseline.Core, r.Baseline.Elapsed)
	} else {
		fmt.Fprintf(&sb, "measurement disabled: %s\n", r.ExecNote)
	}
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "%s\n", d.Diagnostic)
		switch d.Verdict {
		case VerdictAdvisory:
			sb.WriteString("    advisory — no mechanical fix\n")
		case VerdictUnmeasured:
			fmt.Fprintf(&sb, "    fix available — unmeasured (%s)\n", d.Note)
		case VerdictAccepted:
			fmt.Fprintf(&sb, "    fix accepted — ΔE = %v (%.3f%% of package)\n", d.Delta, d.DeltaPct)
		case VerdictRejected:
			// Joules formatting picks its unit for magnitudes, so render the
			// sign ourselves.
			fmt.Fprintf(&sb, "    fix REJECTED — measured ΔE = -%v (costs energy on this program)\n", -d.Delta)
		}
	}
	if len(r.Diags) == 0 {
		sb.WriteString("(no diagnostics — the project already follows the Table I guidance)\n")
	}
	return sb.String()
}
