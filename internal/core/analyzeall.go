// Corpus-wide analysis: the unified pass engine fanned across every file of
// a generated WEKA-shaped corpus on the sched pool. This is the reproduction
// of running JEPO over all of WEKA (§VIII ran it over 3,373 classes): each
// file is analyzed in isolation — detect, fix, verify with its own parser,
// interpreter and meter instances — and per-file reports merge in file order,
// so the corpus report is bit-identical at any worker count.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"jepo/internal/corpus"
	"jepo/internal/passes"
	"jepo/internal/sched"
)

// FileAnalysis is one corpus file's pass-engine outcome.
type FileAnalysis struct {
	Path   string
	Report *AnalysisReport
}

// CorpusReport aggregates AnalyzeAll over a corpus.Project.
type CorpusReport struct {
	Root  string // the classifier whose closure was analyzed
	Files []FileAnalysis
}

// Totals counts the corpus-wide findings: files with at least one finding,
// total diagnostics, and how many carry a mechanical fix.
func (r *CorpusReport) Totals() (flagged, diags, fixable int) {
	for _, fa := range r.Files {
		if len(fa.Report.Diags) > 0 {
			flagged++
		}
		diags += len(fa.Report.Diags)
		for _, d := range fa.Report.Diags {
			if d.Severity == passes.SeverityFixable {
				fixable++
			}
		}
	}
	return flagged, diags, fixable
}

// RuleCounts tallies diagnostics per rule across the corpus.
func (r *CorpusReport) RuleCounts() map[passes.Rule]int {
	counts := make(map[passes.Rule]int)
	for _, fa := range r.Files {
		for _, d := range fa.Report.Diags {
			counts[d.Rule]++
		}
	}
	return counts
}

// AnalyzeAll runs the unified pass engine over every file of a generated
// corpus, sharded across cfg.Jobs workers. Each file is treated as its own
// single-file project — its diagnostics are detected, and when the file is
// runnable its fixes are measured in isolation, exactly as Analyze does —
// and the reports are committed in corpus file order. The returned telemetry
// is the pool's execution ledger; it is timing-dependent and must go to
// stderr, never into a determinism-pinned output stream.
func AnalyzeAll(ctx context.Context, p *corpus.Project, cfg AnalyzeConfig) (*CorpusReport, sched.Telemetry, error) {
	// Resolve the artifact engine once so every worker shares one store even
	// if the process-wide default is swapped mid-run.
	cfg.Cache = cfg.cache()
	report := &CorpusReport{Root: p.Root, Files: make([]FileAnalysis, 0, len(p.Files))}
	_, tel, err := sched.MapCommit(ctx, sched.Config{Jobs: cfg.Jobs}, p.Files,
		func(_ sched.Task, f corpus.File) (*AnalysisReport, error) {
			fileCfg := cfg
			fileCfg.Jobs = 1 // the fan-out is per file; fixes inside one file run inline
			r, err := Analyze(ctx, Project{f.Path: f.Source}, fileCfg)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", f.Path, err)
			}
			return r, nil
		},
		func(task sched.Task, r *AnalysisReport) {
			report.Files = append(report.Files, FileAnalysis{Path: p.Files[task.Index].Path, Report: r})
		})
	if err != nil {
		return nil, tel, err
	}
	return report, tel, nil
}

// CorpusView renders the corpus-wide summary: totals, the per-rule breakdown
// in descending-count order, and the most-flagged files. The rendering is a
// pure function of the report, so it byte-diffs clean across -jobs values.
func CorpusView(r *CorpusReport) string {
	var sb strings.Builder
	flagged, diags, fixable := r.Totals()
	fmt.Fprintf(&sb, "corpus %s: %d files analyzed, %d flagged, %d diagnostics (%d fixable)\n",
		r.Root, len(r.Files), flagged, diags, fixable)

	type ruleCount struct {
		rule passes.Rule
		n    int
	}
	var rules []ruleCount
	for rule, n := range r.RuleCounts() {
		rules = append(rules, ruleCount{rule, n})
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].n != rules[j].n {
			return rules[i].n > rules[j].n
		}
		return rules[i].rule < rules[j].rule
	})
	for _, rc := range rules {
		fmt.Fprintf(&sb, "  %6d  [%s] %s\n", rc.n, rc.rule.Component(), rc.rule.Text())
	}

	type fileCount struct {
		path string
		n    int
	}
	var files []fileCount
	for _, fa := range r.Files {
		if n := len(fa.Report.Diags); n > 0 {
			files = append(files, fileCount{fa.Path, n})
		}
	}
	sort.SliceStable(files, func(i, j int) bool { return files[i].n > files[j].n })
	if len(files) > 0 {
		sb.WriteString("hottest files:\n")
		top := files
		if len(top) > 10 {
			top = top[:10]
		}
		for _, fc := range top {
			fmt.Fprintf(&sb, "  %6d  %s\n", fc.n, fc.path)
		}
	}
	return sb.String()
}
