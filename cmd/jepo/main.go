// Command jepo is the CLI form of the JEPO Eclipse plugin: it analyzes Java
// sources for the Table I energy suggestions (the optimizer view of Fig. 5
// and the dynamic view of Fig. 2), applies the refactorings automatically,
// profiles programs at method granularity via injected RAPL probes (the
// profiler view of Fig. 4 and result.txt), and computes the Table II source
// metrics.
//
// Usage:
//
//	jepo suggest [-line N] <file.java>...
//	jepo analyze [-main Class] [-jobs N] <file.java>...
//	jepo optimize [-o dir] [-dry] <file.java>...
//	jepo profile [-main Class] [-result result.txt] <file.java>...
//	jepo metrics -root Class <file.java>...
//	jepo corpus [-classifier C] [-jobs N]
//	jepo table1 [-jobs N]
//
// All -jobs flags are pure wall-clock knobs: the work shards across the
// deterministic sched pool, results commit in input order, and stdout is
// byte-identical at any value. Pool telemetry (timing-dependent) prints to
// stderr only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"jepo/internal/cliconfig"
	"jepo/internal/core"
	"jepo/internal/corpus"
	"jepo/internal/dist"
	"jepo/internal/dist/campaigns"
	"jepo/internal/service"
	"jepo/internal/tables"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if os.Args[1] == dist.WorkerArg {
		if err := campaigns.ServeWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "jepo worker:", err)
			os.Exit(1)
		}
		return
	}
	// Ctrl-C / SIGTERM cancels the root context: pools drain, dist campaigns
	// shut their nodes down and save their checkpoint ledgers, and the run
	// exits with the cancellation error instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "suggest":
		err = cmdSuggest(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(ctx, os.Args[2:])
	case "optimize":
		err = cmdOptimize(ctx, os.Args[2:])
	case "profile":
		err = cmdProfile(ctx, os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "corpus":
		err = cmdCorpus(ctx, os.Args[2:])
	case "table1":
		err = cmdTable1(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "jepo: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "jepo:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `jepo — Java Energy Profiler & Optimizer (library/CLI reproduction)

commands:
  suggest   show Table I energy-efficiency suggestions (optimizer view)
            -line N   order by proximity to line N (dynamic view)
  analyze   unified diagnostic view: every finding with its fix status and,
            when the program has a runnable main, the measured per-fix ΔE
            -main C   main class for the measurement runs
            -engine E execution engine: vm (bytecode, default) or ast
            -jobs N   per-fix measurement workers (default GOMAXPROCS);
                      output is bit-identical at any value
  optimize  apply the suggestions automatically and report the changes
            -o DIR    write refactored sources under DIR (default: print)
            -dry      only report what would change
  profile   run a program with injected RAPL probes, print per-method energy
            -main C   main class (required when several classes have main)
            -result F write the per-execution log (default result.txt)
            -engine E execution engine: vm (bytecode, default) or ast
  metrics   dependency/attribute/method/package/LOC metrics for a class
            -root C   root class (required)
  corpus    fan the analyzer across a generated WEKA-shaped corpus
            -classifier C  whose closure to analyze (default J48)
            -seed N   corpus generation seed
            -jobs N   analysis workers (default GOMAXPROCS)
            -workers N     worker processes; >1 dispatches files to
                           re-exec'd workers with node fault tolerance
                           (stdout stays bit-identical)
            -node-deadline D  silence window before a node is quarantined
  table1    measure the component-energy ratios behind the suggestions
            -engine E execution engine: vm (bytecode, default) or ast
            -jobs N   bench-pair workers (default GOMAXPROCS)

every command also accepts the artifact-cache knobs (pure cost knobs —
stdout is byte-identical with the cache on or off):
  -cache        content-addressed parse/program/sample cache (default true)
  -cache-size N cache capacity in entries; hit/miss stats print to stderr
`)
}

// loadProject reads the given .java files (directories are walked).
func loadProject(args []string) (core.Project, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no input files")
	}
	p := core.Project{}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			b, err := os.ReadFile(arg)
			if err != nil {
				return nil, err
			}
			p[arg] = string(b)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".java") {
				return err
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			p[path] = string(b)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("no .java files found")
	}
	return p, nil
}

func cmdSuggest(args []string) error {
	fs := flag.NewFlagSet("suggest", flag.ExitOnError)
	line := fs.Int("line", 0, "order suggestions by proximity to this line (dynamic view)")
	shared := cliconfig.Register(fs, 0)
	fs.Parse(args)
	shared.ApplyCache()
	p, err := loadProject(fs.Args())
	if err != nil {
		return err
	}
	sugs, err := core.SuggestProject(p)
	if err != nil {
		return err
	}
	if *line > 0 {
		fmt.Print(core.DynamicView(sugs, *line))
		return nil
	}
	fmt.Print(core.OptimizerView(sugs))
	fmt.Printf("\n%d suggestion(s) across %d file(s)\n", len(sugs), len(p))
	return nil
}

func cmdAnalyze(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	mainClass := fs.String("main", "", "class whose main method anchors the measurement runs")
	shared := cliconfig.Register(fs, cliconfig.FeatEngine|cliconfig.FeatJobs)
	fs.Parse(args)
	eng := shared.ApplyCache()
	engine, err := shared.Engine()
	if err != nil {
		return err
	}
	p, err := loadProject(fs.Args())
	if err != nil {
		return err
	}
	rep, err := core.Analyze(ctx, p, core.AnalyzeConfig{MainClass: *mainClass, Engine: engine, Jobs: shared.Jobs()})
	if err != nil {
		return err
	}
	fmt.Print(service.RenderAnalyze(rep))
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}

func cmdOptimize(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	out := fs.String("o", "", "directory to write refactored sources into")
	dry := fs.Bool("dry", false, "report changes without writing anything")
	shared := cliconfig.Register(fs, 0)
	fs.Parse(args)
	shared.ApplyCache()
	p, err := loadProject(fs.Args())
	if err != nil {
		return err
	}
	refactored, res, err := core.Optimize(ctx, p)
	if err != nil {
		return err
	}
	if *dry {
		fmt.Print(service.RenderOptimizeSummary(res))
		return nil
	}
	if *out == "" {
		fmt.Print(service.RenderOptimize(refactored, res))
		return nil
	}
	fmt.Print(service.RenderOptimizeSummary(res))
	for path, src := range refactored {
		dst := filepath.Join(*out, path)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dst, []byte(src), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d file(s) under %s\n", len(refactored), *out)
	return nil
}

func cmdProfile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	mainClass := fs.String("main", "", "class whose main method to run")
	resultPath := fs.String("result", "result.txt", "path for the per-execution log")
	shared := cliconfig.Register(fs, cliconfig.FeatEngine)
	fs.Parse(args)
	shared.ApplyCache()
	engine, err := shared.Engine()
	if err != nil {
		return err
	}
	p, err := loadProject(fs.Args())
	if err != nil {
		return err
	}
	res, err := core.Profile(ctx, p, core.ProfileConfig{MainClass: *mainClass, Engine: engine})
	if err != nil {
		return err
	}
	fmt.Print(service.RenderProfile(res))
	if err := res.Profiler.WriteResultTxt(*resultPath); err != nil {
		return err
	}
	fmt.Printf("per-execution log written to %s\n", *resultPath)
	return nil
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	root := fs.String("root", "", "root class for the dependency closure")
	shared := cliconfig.Register(fs, 0)
	fs.Parse(args)
	shared.ApplyCache()
	if *root == "" {
		return fmt.Errorf("metrics: -root is required")
	}
	p, err := loadProject(fs.Args())
	if err != nil {
		return err
	}
	m, err := core.Metrics(p, *root)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %10s %8s %9s %8s\n",
		"Class", "Dependencies", "Attributes", "Methods", "Packages", "LOC")
	fmt.Printf("%-14s %12d %10d %8d %9d %8d\n",
		m.Root, m.Dependencies, m.Attributes, m.Methods, m.Packages, m.LOC)
	return nil
}

func cmdCorpus(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	classifier := fs.String("classifier", "J48", "classifier whose generated closure to analyze")
	seed := fs.Uint64("seed", 20200518, "corpus generation seed")
	shared := cliconfig.Register(fs, cliconfig.FeatEngine|cliconfig.FeatJobs|cliconfig.FeatDist)
	fs.Parse(args)
	eng := shared.ApplyCache()
	engine, err := shared.Engine()
	if err != nil {
		return err
	}
	if shared.Workers() > 1 {
		dcfg, err := shared.DistConfig(*seed, func(msg string) { fmt.Fprintln(os.Stderr, "jepo:", msg) })
		if err != nil {
			return err
		}
		rep, drep, err := campaigns.AnalyzeCorpus(ctx, dcfg, *classifier, *seed, engine)
		if err != nil {
			return err
		}
		fmt.Print(core.CorpusView(rep))
		fmt.Fprintln(os.Stderr, drep.String())
		fmt.Fprint(os.Stderr, drep.NodeSummary())
		return nil
	}
	p, err := corpus.Generate(*classifier, *seed)
	if err != nil {
		return err
	}
	rep, tel, err := core.AnalyzeAll(ctx, p, core.AnalyzeConfig{Engine: engine, Jobs: shared.Jobs()})
	if err != nil {
		return err
	}
	fmt.Print(core.CorpusView(rep))
	fmt.Fprintln(os.Stderr, tel)
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}

func cmdTable1(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	shared := cliconfig.Register(fs, cliconfig.FeatEngine|cliconfig.FeatJobs)
	fs.Parse(args)
	eng := shared.ApplyCache()
	engine, err := shared.Engine()
	if err != nil {
		return err
	}
	rows, tel, err := tables.Table1Jobs(ctx, engine, shared.Jobs())
	if err != nil {
		return err
	}
	fmt.Print(service.RenderTable1(rows))
	fmt.Fprintln(os.Stderr, tel)
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}
