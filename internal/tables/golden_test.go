package tables

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"jepo/internal/airlines"
	"jepo/internal/corpus"
	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/refactor"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden_energy.json")

// goldenRecord pins one program's complete energy fingerprint. Joules and
// cycles are stored as float64 bit patterns so the comparison is exact: the
// interpreter optimization work (slot frames, call-site caches, pooling) must
// not move a single charge.
type goldenRecord struct {
	Name     string            `json:"name"`
	Output   string            `json:"output"`
	OpCounts map[string]uint64 `json:"op_counts"`
	Cycles   uint64            `json:"cycles_bits"`
	Package  uint64            `json:"package_bits"`
	Core     uint64            `json:"core_bits"`
	DRAM     uint64            `json:"dram_bits"`
	// Human-readable mirrors, ignored by the comparison.
	PackageJ float64 `json:"package_joules"`
	CycleF   float64 `json:"cycles"`
}

// fingerprint runs fn against a fresh meter and captures the full charge
// fingerprint plus whatever the interpreter printed.
func fingerprint(t *testing.T, engine interp.Engine, name string, load func(t *testing.T) *interp.Program, drive func(t *testing.T, in *interp.Interp)) goldenRecord {
	t.Helper()
	prog := load(t)
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000), interp.WithEngine(engine))
	drive(t, in)
	m := in.Meter()
	s := m.Snapshot()
	counts := map[string]uint64{}
	for op := 0; op < energy.NumOps; op++ {
		if n := m.OpCount(energy.Op(op)); n > 0 {
			counts[energy.Op(op).String()] = n
		}
	}
	return goldenRecord{
		Name:     name,
		Output:   in.Output(),
		OpCounts: counts,
		Cycles:   math.Float64bits(s.Cycles),
		Package:  math.Float64bits(float64(s.Package)),
		Core:     math.Float64bits(float64(s.Core)),
		DRAM:     math.Float64bits(float64(s.DRAM)),
		PackageJ: float64(s.Package),
		CycleF:   s.Cycles,
	}
}

// goldenBattery builds the full determinism battery: every Table I variant
// plus the RandomForest Table IV kernel, original and refactored.
func goldenBattery(t *testing.T, engine interp.Engine) []goldenRecord {
	t.Helper()
	var recs []goldenRecord

	loadSrc := func(src string) func(t *testing.T) *interp.Program {
		return func(t *testing.T) *interp.Program {
			t.Helper()
			f, err := parser.Parse("golden.java", src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := interp.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			return prog
		}
	}
	driveF := func(t *testing.T, in *interp.Interp) {
		t.Helper()
		if err := in.InitStatics(); err != nil {
			t.Fatal(err)
		}
		if _, err := in.CallStatic("B", "f"); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range table1Benches {
		recs = append(recs,
			fingerprint(t, engine, fmt.Sprintf("table1/%v/inefficient", b.rule), loadSrc(b.slow), driveF),
			fingerprint(t, engine, fmt.Sprintf("table1/%v/efficient", b.rule), loadSrc(b.fast), driveF),
		)
	}

	// One Table IV kernel pair on real generated data, exercising statics,
	// objects, arrays, calls and exceptions together.
	const kernelName = "RandomForest"
	const kernelRows = 300
	proj, err := corpus.Generate(kernelName, 20200518)
	if err != nil {
		t.Fatal(err)
	}
	data := airlines.Generate(kernelRows, 20200518)
	feats, labels := kernelData(data)
	loadKernel := func(refactored bool) func(t *testing.T) *interp.Program {
		return func(t *testing.T) *interp.Program {
			t.Helper()
			kernel, err := kernelAST(proj, kernelName)
			if err != nil {
				t.Fatal(err)
			}
			if refactored {
				refactor.Apply([]*ast.File{kernel})
			}
			prog, err := interp.Load(kernel)
			if err != nil {
				t.Fatal(err)
			}
			return prog
		}
	}
	driveKernel := func(t *testing.T, in *interp.Interp) {
		t.Helper()
		if err := in.InitStatics(); err != nil {
			t.Fatal(err)
		}
		kc := corpus.KernelClass(kernelName)
		if err := in.Bind(kc, "DATA", in.NewDoubleMatrix(feats)); err != nil {
			t.Fatal(err)
		}
		if err := in.Bind(kc, "LABELS", in.NewIntArray(labels)); err != nil {
			t.Fatal(err)
		}
		if _, err := in.CallStatic(kc, "run", interp.IntVal(1)); err != nil {
			t.Fatal(err)
		}
	}
	recs = append(recs,
		fingerprint(t, engine, "table4/"+kernelName+"/original", loadKernel(false), driveKernel),
		fingerprint(t, engine, "table4/"+kernelName+"/refactored", loadKernel(true), driveKernel),
	)
	return recs
}

// TestGoldenEnergyDeterminism is the tentpole invariant of the interpreter:
// simulated energy is a pure function of the program and cost table,
// independent of host-side interpreter optimizations AND of the execution
// engine. The golden file was generated from the pre-optimization
// tree-walker; both the current walker and the bytecode VM must reproduce
// it bit-for-bit — any drift in op counts, joules, cycles or program output
// fails the test.
//
// Regenerate (only after an intentional cost-model or corpus change) with:
//
//	go test ./internal/tables -run GoldenEnergy -update
func TestGoldenEnergyDeterminism(t *testing.T) {
	path := filepath.Join("testdata", "golden_energy.json")
	if *updateGolden {
		got := goldenBattery(t, interp.EngineVM)
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d records)", path, len(got))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for _, engine := range []interp.Engine{interp.EngineVM, interp.EngineAST} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) {
			compareGolden(t, want, goldenBattery(t, engine))
		})
	}
}

// compareGolden diffs one engine's battery against the golden records.
func compareGolden(t *testing.T, want, got []goldenRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("battery size changed: golden has %d records, run produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if w.Name != g.Name {
			t.Errorf("record %d: name %q, golden %q", i, g.Name, w.Name)
			continue
		}
		if g.Output != w.Output {
			t.Errorf("%s: program output drifted", w.Name)
		}
		if g.Cycles != w.Cycles || g.Package != w.Package || g.Core != w.Core || g.DRAM != w.DRAM {
			t.Errorf("%s: energy drifted: package %v (golden %v), cycles %v (golden %v)",
				w.Name, math.Float64frombits(g.Package), math.Float64frombits(w.Package),
				math.Float64frombits(g.Cycles), math.Float64frombits(w.Cycles))
		}
		for op, n := range w.OpCounts {
			if g.OpCounts[op] != n {
				t.Errorf("%s: op %s count = %d, golden %d", w.Name, op, g.OpCounts[op], n)
			}
		}
		for op, n := range g.OpCounts {
			if _, ok := w.OpCounts[op]; !ok {
				t.Errorf("%s: new op %s charged %d times, absent from golden", w.Name, op, n)
			}
		}
	}
}
