package tables

import (
	"context"
	"strings"
	"testing"
)

func TestAblationDecomposesRandomForestImprovement(t *testing.T) {
	cfg := AblationConfig{Seed: 20200518, Classifier: "RandomForest", Instances: 300, Reps: 4}
	rows, err := Ablate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Variant] = r.PackagePct
	}
	full := byName["full"]
	if full < 5 {
		t.Fatalf("full-model improvement = %.2f%%, want a clear win", full)
	}
	// Every single-mechanism removal must reduce (or at most preserve) the
	// improvement — nothing in the model should work against the refactorer.
	for _, r := range rows {
		if r.Variant == "full" {
			continue
		}
		if r.PackagePct > full+1 {
			t.Errorf("removing %s increased improvement: %.2f%% > full %.2f%%",
				r.Variant, r.PackagePct, full)
		}
	}
	// The Random Forest win is built from FP narrowing and static hoisting;
	// removing either must visibly dent it.
	for _, key := range []string{"uniform-fp", "cheap-static"} {
		if byName[key] > full-0.5 {
			t.Errorf("ablating %s barely moved the needle: %.2f%% vs full %.2f%%",
				key, byName[key], full)
		}
	}
	out := RenderAblation("RandomForest", rows)
	if !strings.Contains(out, "full") || !strings.Contains(out, "uniform-fp") {
		t.Errorf("render malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestAblationFlatKernelStaysFlat(t *testing.T) {
	cfg := AblationConfig{Seed: 20200518, Classifier: "RandomTree", Instances: 200, Reps: 2}
	rows, err := Ablate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PackagePct > 1 || r.PackagePct < -1 {
			t.Errorf("RandomTree %s improvement = %.2f%%, want ≈0 under every variant",
				r.Variant, r.PackagePct)
		}
	}
}

func TestAblationUnknownClassifier(t *testing.T) {
	if _, err := Ablate(context.Background(), AblationConfig{Classifier: "Nope", Instances: 10, Reps: 1}); err == nil {
		t.Error("unknown classifier accepted")
	}
}
