package interp

import (
	"math"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/minijava/parser"
)

// fastpathProbeSrc exercises every fused metering lane the engines share:
// indexed loads and stores (ArrayAccess), instance fields (FieldAccess),
// statics (StaticAccess), block charge replay (StepRun vs StepList) and the
// int ++/-- lane — in loops long enough that a single misplaced or reordered
// charge shifts the accumulated joule bits.
const fastpathProbeSrc = `class T {
	static int acc = 0;
	int field = 3;
	static double f() {
		int[] a = new int[64];
		T o = new T();
		double s = 0.5;
		for (int i = 0; i < 500; i++) {
			a[i % 64] = a[(i + 1) % 64] + i;
			o.field = o.field + a[i % 64];
			acc = acc + o.field;
			s = s + acc * 0.25 - i;
		}
		return s;
	}
}`

// fastpathRun executes T.f() with the given engine and cost table and
// returns the result bits, printed output and package-energy bits.
func fastpathRun(t *testing.T, e Engine, costs energy.CostTable) (res Value, pkgBits uint64) {
	t.Helper()
	f, err := parser.Parse("fastpath.java", fastpathProbeSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := Load(f)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	in := New(prog, energy.NewMeter(costs), WithMaxOps(1_000_000), WithEngine(e))
	if err := in.InitStatics(); err != nil {
		t.Fatalf("init: %v", err)
	}
	v, err := in.CallStatic("T", "f")
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return v, math.Float64bits(float64(in.Meter().Snapshot().Package))
}

// TestEngineEnergyParityAcrossMeterPaths runs the probe on both engines
// under three meter configurations — fast path on, fast path off, and a
// custom cost table that defeats the VM's bound-delta replay (Costs() no
// longer matches the program's bound table, so OpRunCharge must fall back
// to StepList) — and demands one joule answer from all six runs.
func TestEngineEnergyParityAcrossMeterPaths(t *testing.T) {
	custom := energy.DefaultCosts()
	custom.Ops[energy.OpArithInt].Picojoules *= 1.5
	custom.Ops[energy.OpLocal].Cycles += 0.25

	type cfg struct {
		name  string
		env   string
		costs energy.CostTable
	}
	cfgs := []cfg{
		{"fastpath on", "", energy.DefaultCosts()},
		{"fastpath off", "off", energy.DefaultCosts()},
		{"custom costs defeat bound replay", "", custom},
	}
	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			t.Setenv(energy.FastPathEnv, c.env)
			astV, astBits := fastpathRun(t, EngineAST, c.costs)
			vmV, vmBits := fastpathRun(t, EngineVM, c.costs)
			if astV != vmV {
				t.Errorf("result differs: ast=%+v vm=%+v", astV, vmV)
			}
			if astBits != vmBits {
				t.Errorf("package energy bits differ: ast=%#x vm=%#x", astBits, vmBits)
			}
		})
	}

	// The three configurations must also agree with each other wherever the
	// cost table is the same: on vs off is the fast path's whole contract.
	t.Run("on and off land identical bits", func(t *testing.T) {
		t.Setenv(energy.FastPathEnv, "")
		_, onBits := fastpathRun(t, EngineVM, energy.DefaultCosts())
		t.Setenv(energy.FastPathEnv, "off")
		_, offBits := fastpathRun(t, EngineVM, energy.DefaultCosts())
		if onBits != offBits {
			t.Errorf("fast path changed the joule bits: on=%#x off=%#x", onBits, offBits)
		}
	})
}
