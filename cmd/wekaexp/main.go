// Command wekaexp regenerates the paper's evaluation tables end to end:
//
//	wekaexp -table 1            component energy ratios (Table I)
//	wekaexp -table 2            per-classifier WEKA metrics (Table II)
//	wekaexp -table 3            airlines schema & distribution (Table III)
//	wekaexp -table 4            the full §VIII validation (Table IV)
//	wekaexp -table all          everything
//
// Table IV runs the complete pipeline per classifier — corpus generation,
// JEPO refactoring, kernel energy measurement under the repeat/Tukey
// protocol, and double-vs-float cross-validation — and prints the same
// columns the paper reports.
//
// -jobs N shards table rows across the deterministic sched pool: stdout is
// bit-identical at any value, and the pool's timing telemetry goes to stderr.
//
// -workers N shards table rows across N worker *processes* instead (the
// binary re-exec'd in worker mode), with heartbeats, per-node deadlines and
// deterministic reassignment: a killed or hung worker costs a quarantine,
// never a row, and stdout stays bit-identical to -workers 1. The dispatch
// report goes to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"jepo/internal/airlines"
	"jepo/internal/cliconfig"
	"jepo/internal/corpus"
	"jepo/internal/dist"
	"jepo/internal/dist/campaigns"
	"jepo/internal/jmetrics"
	"jepo/internal/sched"
	"jepo/internal/service"
	"jepo/internal/stats"
	"jepo/internal/tables"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == dist.WorkerArg {
		if err := campaigns.ServeWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "wekaexp worker:", err)
			os.Exit(1)
		}
		return
	}
	// Ctrl-C / SIGTERM cancels the root context: pools drain, campaigns shut
	// their nodes down, and -checkpoint files are saved valid so a rerun
	// resumes instead of restarting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := realMain(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "wekaexp:", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// reportDispatch prints the campaign's dispatch ledger to stderr, keeping
// determinism-pinned stdout clean.
func reportDispatch(stderr io.Writer, rep dist.Report) {
	fmt.Fprintln(stderr, rep.String())
	fmt.Fprint(stderr, rep.NodeSummary())
}

// narrate prefixes dispatcher fault-path events onto stderr.
func narrate(stderr io.Writer) func(string) {
	return func(msg string) { fmt.Fprintln(stderr, "wekaexp:", msg) }
}

// realMain is the whole command behind an injectable surface: argument list
// in, output streams out, failures as an error. main() only maps the error
// to the exit status, so tests drive every flag path in-process.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("wekaexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to regenerate: 1, 2, 3, 4, ablation or all")
	seed := fs.Uint64("seed", 20200518, "experiment seed")
	instances := fs.Int("instances", 2000, "airlines instances for Table IV")
	reps := fs.Int("reps", 3, "kernel repetitions per Table IV measurement")
	runs := fs.Int("runs", 5, "measurements per configuration (paper: 10)")
	folds := fs.Int("folds", 10, "cross-validation folds for accuracy")
	arff := fs.String("arff", "", "also write the airlines data as ARFF to this path (table 3)")
	dumpDir := fs.String("dump-corpus", "", "write a generated WEKA-shaped corpus under this directory")
	dumpFor := fs.String("classifier", "J48", "classifier whose corpus -dump-corpus writes")
	checkpoint := fs.String("checkpoint", "", "directory persisting completed Table IV rows; reruns resume from it")
	rowTimeout := fs.Duration("row-timeout", 0, "per-classifier deadline for Table IV (0 = none)")
	shared := cliconfig.Register(fs, cliconfig.FeatEngine|cliconfig.FeatJobs|cliconfig.FeatDist)
	verbose := fs.Bool("v", false, "print progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Install the process-wide artifact engine and export the configuration,
	// so re-exec'd -workers processes inherit it. Stats print to stderr at
	// the end; stdout stays determinism-pinned.
	eng := shared.ApplyCache()
	defer func() { fmt.Fprintln(stderr, eng.Stats()) }()
	engine, err := shared.Engine()
	if err != nil {
		return err
	}
	jobs, workers := shared.Jobs(), shared.Workers()

	if *dumpDir != "" {
		if err := dumpCorpus(stdout, *dumpDir, *dumpFor, *seed); err != nil {
			return err
		}
	}

	// A failing table does not abort the run: remaining tables still
	// regenerate, every failure is reported at the end, and only then does
	// the command fail.
	var failures []string
	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(stderr, "wekaexp: table %s: %v\n", name, err)
			failures = append(failures, name)
		}
	}

	run("1", func() error {
		var rows []tables.Table1Row
		if workers > 1 {
			dcfg, err := shared.DistConfig(*seed, narrate(stderr))
			if err != nil {
				return err
			}
			var rep dist.Report
			rows, rep, err = campaigns.Table1Rows(ctx, dcfg, engine)
			if err != nil {
				return err
			}
			reportDispatch(stderr, rep)
		} else {
			var tel sched.Telemetry
			var err error
			rows, tel, err = tables.Table1Jobs(ctx, engine, jobs)
			if err != nil {
				return err
			}
			fmt.Fprintln(stderr, tel)
		}
		fmt.Fprintln(stdout, "=== Table I: Java components & suggestions (measured) ===")
		fmt.Fprint(stdout, tables.RenderTable1(rows))
		fmt.Fprintln(stdout)
		return nil
	})

	run("2", func() error {
		var rows []jmetrics.Metrics
		if workers > 1 {
			dcfg, err := shared.DistConfig(*seed, narrate(stderr))
			if err != nil {
				return err
			}
			var rep dist.Report
			rows, rep, err = campaigns.Table2Rows(ctx, dcfg, *seed)
			if err != nil {
				return err
			}
			reportDispatch(stderr, rep)
		} else {
			var tel sched.Telemetry
			var err error
			rows, tel, err = tables.Table2Parallel(ctx, *seed, jobs)
			if err != nil {
				return err
			}
			fmt.Fprintln(stderr, tel)
		}
		fmt.Fprint(stdout, service.RenderTable2(rows))
		return nil
	})

	run("3", func() error {
		fmt.Fprintln(stdout, "=== Table III: MOA airlines data ===")
		fmt.Fprint(stdout, tables.Table3(*instances, *seed))
		if *arff != "" {
			f, err := os.Create(*arff)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := airlines.Generate(*instances, *seed).WriteARFF(f); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "ARFF written to %s\n", *arff)
		}
		fmt.Fprintln(stdout)
		return nil
	})

	run("ablation", func() error {
		cfg := tables.DefaultAblationConfig()
		cfg.Seed = *seed
		cfg.Instances = *instances
		cfg.Engine = engine
		rows, err := tables.Ablate(ctx, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "=== Ablation: cost-model mechanisms behind the Table IV headline ===")
		fmt.Fprint(stdout, tables.RenderAblation(cfg.Classifier, rows))
		fmt.Fprintln(stdout)
		return nil
	})

	run("4", func() error {
		cfg := tables.Table4Config{
			Seed:          *seed,
			Instances:     *instances,
			Reps:          *reps,
			Protocol:      stats.Protocol{Runs: *runs, MaxRounds: 10},
			CVFolds:       *folds,
			Slots:         jobs,
			RowTimeout:    *rowTimeout,
			CheckpointDir: *checkpoint,
			Engine:        engine,
			OnTelemetry:   func(tel sched.Telemetry) { fmt.Fprintln(stderr, tel) },
		}
		if *verbose {
			cfg.Progress = func(msg string) { fmt.Fprintln(stderr, msg) }
		}
		fmt.Fprintln(stdout, "=== Table IV: WEKA evaluation ===")
		var rows []tables.Table4Row
		if workers > 1 {
			dcfg, derr := shared.DistConfig(*seed, narrate(stderr))
			if derr != nil {
				return derr
			}
			// The dispatch ledger rides in the same directory as the row
			// checkpoints: a crashed campaign resumes both layers.
			if *checkpoint != "" {
				if merr := os.MkdirAll(*checkpoint, 0o755); merr != nil {
					return merr
				}
				dcfg.Checkpoint = filepath.Join(*checkpoint, "dist_table4.json")
			}
			var rep dist.Report
			rows, rep, err = campaigns.Table4Rows(ctx, dcfg, cfg)
			if err != nil {
				return err
			}
			reportDispatch(stderr, rep)
		} else {
			rows, err = tables.Table4Supervised(ctx, cfg)
			if err != nil {
				return err
			}
		}
		fmt.Fprint(stdout, tables.RenderTable4(rows))
		fmt.Fprintln(stdout)
		if failed := tables.FailedRows(rows); len(failed) > 0 {
			names := make([]string, len(failed))
			for i, r := range failed {
				names[i] = r.Classifier
			}
			return fmt.Errorf("%d classifier row(s) failed: %s", len(failed), strings.Join(names, ", "))
		}
		return nil
	})

	if len(failures) > 0 {
		return fmt.Errorf("%d table(s) failed: %s", len(failures), strings.Join(failures, ", "))
	}
	return nil
}

// dumpCorpus materializes one classifier's generated corpus as .java files on
// disk, so the jepo and jperf CLIs can be pointed at it directly.
func dumpCorpus(stdout io.Writer, dir, classifier string, seed uint64) error {
	p, err := corpus.Generate(classifier, seed)
	if err != nil {
		return err
	}
	for _, f := range p.Files {
		dst := filepath.Join(dir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dst, []byte(f.Source), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "corpus for %s written under %s (%d files)\n", classifier, dir, len(p.Files))
	return nil
}
