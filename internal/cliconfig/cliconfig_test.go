package cliconfig

import (
	"flag"
	"io"
	"os"
	"testing"
	"time"

	"jepo/internal/engine"
)

func newFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestDefaults(t *testing.T) {
	fs := newFlagSet()
	s := Register(fs, FeatEngine|FeatJobs|FeatDist)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg := s.CacheConfig(); cfg.Disabled || cfg.Capacity != engine.DefaultCapacity {
		t.Errorf("default cache config = %+v, want enabled at DefaultCapacity", cfg)
	}
	eng, err := s.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if eng.String() != "vm" {
		t.Errorf("default engine = %v, want vm", eng)
	}
	if s.Jobs() <= 0 {
		t.Errorf("default jobs = %d, want > 0", s.Jobs())
	}
	if s.Workers() != 1 {
		t.Errorf("default workers = %d, want 1", s.Workers())
	}
	if s.NodeDeadline() != 10*time.Second {
		t.Errorf("default node-deadline = %v, want 10s", s.NodeDeadline())
	}
}

func TestParsedValues(t *testing.T) {
	fs := newFlagSet()
	s := Register(fs, FeatEngine|FeatJobs|FeatDist)
	args := []string{
		"-engine", "ast", "-jobs", "3", "-workers", "4",
		"-node-deadline", "2s", "-cache=false", "-cache-size", "99",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if cfg := s.CacheConfig(); !cfg.Disabled || cfg.Capacity != 99 {
		t.Errorf("cache config = %+v, want disabled with capacity 99", cfg)
	}
	eng, err := s.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if eng.String() != "ast" {
		t.Errorf("engine = %v, want ast", eng)
	}
	if s.Jobs() != 3 || s.Workers() != 4 || s.NodeDeadline() != 2*time.Second {
		t.Errorf("jobs/workers/deadline = %d/%d/%v, want 3/4/2s",
			s.Jobs(), s.Workers(), s.NodeDeadline())
	}
}

func TestFeatureGating(t *testing.T) {
	fs := newFlagSet()
	Register(fs, 0)
	for _, name := range []string{"engine", "jobs", "workers", "node-deadline"} {
		if fs.Lookup(name) != nil {
			t.Errorf("flag -%s registered without its feature bit", name)
		}
	}
	for _, name := range []string{"cache", "cache-size"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s should always be registered", name)
		}
	}
}

func TestApplyCacheExportsEnv(t *testing.T) {
	t.Cleanup(func() {
		os.Unsetenv(engine.EnvCache)
		os.Unsetenv(engine.EnvCacheSize)
	})
	fs := newFlagSet()
	s := Register(fs, 0)
	if err := fs.Parse([]string{"-cache=false", "-cache-size", "77"}); err != nil {
		t.Fatal(err)
	}
	eng := s.ApplyCache()
	if !eng.Stats().Disabled {
		t.Error("ApplyCache did not disable the engine")
	}
	if got := os.Getenv(engine.EnvCache); got != "0" {
		t.Errorf("%s = %q, want \"0\" (worker processes must inherit -cache=false)", engine.EnvCache, got)
	}
	if got := os.Getenv(engine.EnvCacheSize); got != "77" {
		t.Errorf("%s = %q, want \"77\"", engine.EnvCacheSize, got)
	}
	if cfg := engine.EnvConfig(); !cfg.Disabled || cfg.Capacity != 77 {
		t.Errorf("EnvConfig round-trip = %+v, want disabled/77", cfg)
	}
}

func TestDistConfigInheritsFaultPlan(t *testing.T) {
	t.Setenv("JEPO_DIST_FAULTS", "1:kill@2")
	fs := newFlagSet()
	s := Register(fs, FeatDist)
	if err := fs.Parse([]string{"-workers", "3", "-node-deadline", "1s"}); err != nil {
		t.Fatal(err)
	}
	var events []string
	cfg, err := s.DistConfig(42, func(msg string) { events = append(events, msg) })
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 3 || cfg.Seed != 42 || cfg.Deadline != time.Second || cfg.Retries != 2 {
		t.Errorf("dist config = %+v, want workers=3 seed=42 deadline=1s retries=2", cfg)
	}
	if cfg.Plan == nil {
		t.Error("JEPO_DIST_FAULTS was not folded into the dispatcher config")
	}
	cfg.OnEvent("probe")
	if len(events) != 1 || events[0] != "probe" {
		t.Errorf("OnEvent not wired: %v", events)
	}
}

func TestDistConfigRejectsBadFaultPlan(t *testing.T) {
	t.Setenv("JEPO_DIST_FAULTS", "not-a-plan")
	fs := newFlagSet()
	s := Register(fs, FeatDist)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DistConfig(0, nil); err == nil {
		t.Error("DistConfig accepted a malformed JEPO_DIST_FAULTS")
	}
}
