package tree

import (
	"fmt"
	"math"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// RandomTree is WEKA's RandomTree: at each node a random subset of
// K = ⌊log₂(numAttrs)⌋ + 1 attributes is considered, information gain picks
// the split, and no pruning is performed.
type RandomTree struct {
	// K is the attribute subset size (0 = WEKA's log₂(d)+1 default).
	K int
	// MinLeaf is the minimum instances per leaf (default 1).
	MinLeaf int
	// MaxDepth bounds tree depth (0 = unlimited).
	MaxDepth int

	opts classify.Options
	root *node
}

// NewRandomTree builds a RandomTree with WEKA defaults.
func NewRandomTree(opts classify.Options) *RandomTree {
	return &RandomTree{MinLeaf: 1, opts: opts}
}

// Name implements Classifier.
func (c *RandomTree) Name() string { return "RandomTree" }

// Train implements Classifier.
func (c *RandomTree) Train(d *dataset.Dataset) error {
	return c.trainRows(d, allRows(d), classify.NewRNG(c.opts.Seed))
}

// trainRows lets RandomForest reuse the learner over a bootstrap sample with
// a shared RNG stream.
func (c *RandomTree) trainRows(d *dataset.Dataset, rows []int, rng *classify.RNG) error {
	if len(rows) == 0 {
		return fmt.Errorf("randomtree: empty training set")
	}
	k := c.K
	if k <= 0 {
		k = int(math.Log2(float64(d.NumAttrs()-1))) + 1
	}
	b := &builder{cfg: builderConfig{
		gainRatio: false,
		kAttrs:    k,
		minLeaf:   c.MinLeaf,
		maxDepth:  c.MaxDepth,
		rng:       rng,
		fp:        c.opts.FP,
	}, d: d}
	c.root = b.grow(rows, 0)
	return nil
}

// Predict implements Classifier.
func (c *RandomTree) Predict(row []float64) int { return c.root.predict(row) }

// distribution returns the leaf class distribution (used by RandomForest for
// probability voting).
func (c *RandomTree) distribution(row []float64) []float64 {
	nd := c.root
	for !nd.isLeaf() {
		v := row[nd.attr]
		if math.IsNaN(v) {
			break
		}
		var next *node
		if nd.nominal {
			ix := int(v)
			if ix < 0 || ix >= len(nd.children) {
				break
			}
			next = nd.children[ix]
		} else if v <= nd.threshold {
			next = nd.children[0]
		} else {
			next = nd.children[1]
		}
		if next == nil {
			break
		}
		nd = next
	}
	return nd.dist
}

// NumNodes reports the tree size.
func (c *RandomTree) NumNodes() int { return c.root.countNodes() }
