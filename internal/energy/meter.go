package energy

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Meter accumulates energy, cycles and memory behaviour for one modelled
// execution. It is the single source of truth the simulated RAPL registers
// read from.
//
// A Meter is not safe for concurrent use; the interpreter that drives it is
// single-threaded, as the JVM thread the paper instruments is.
//
// The charging methods come in two layers. Step, Access and StepList are the
// general API; when the fast path is on (see fastpath.go) their hot cases
// run on precomputed unit deltas, and the flattened helpers —
// FieldAccess, StaticAccess, ArrayAccess, AccessRun, StepRun — give the
// interpreter's dispatch loop single concrete calls for its fixed charge
// sequences. Every fast form performs the identical additions in the
// identical order as the general form it replaces; with
// JEPO_METER_FASTPATH=off every helper degrades to the original calls.
type Meter struct {
	costs CostTable
	cache *Cache

	cycles     float64
	coreJ      Joules // PP0 (core) domain
	dramJ      Joules // DRAM domain
	opCounts   [NumOps]uint64
	heapCursor uint64 // bump allocator for synthetic addresses

	// Fast-path state, folded from costs at construction (fastpath.go):
	// per-op unit deltas and the unit cache hit/miss/DRAM charges. fast is
	// false when JEPO_METER_FASTPATH=off; fastN folds the gate and the n==1
	// test into one comparison (1 when fast, an impossible count when not)
	// to keep Step within the compiler's inlining budget — the whole point
	// of the unit-delta path is that the dispatch loop's charges compile to
	// straight-line adds, not calls.
	fast        bool
	fastN       int
	unit        [NumOps]unitCost
	hitU, missU unitCost
	dramPerMiss Joules
}

// NewMeter builds a meter over the given cost table and the default cache
// geometry. It panics if the table fails validation, since an unpopulated
// table is a programming error.
func NewMeter(costs CostTable) *Meter {
	return NewMeterCache(costs, DefaultCacheConfig())
}

// NewMeterCache builds a meter with an explicit cache geometry.
func NewMeterCache(costs CostTable, cache CacheConfig) *Meter {
	if err := costs.Validate(); err != nil {
		panic(err)
	}
	m := &Meter{
		costs:      costs,
		cache:      NewCache(cache),
		heapCursor: 1 << 20, // keep address 0 unused
		fast:       FastPathOn(),
	}
	m.fastN = math.MinInt // matches no real count: Step always takes stepSlow
	if m.fast {
		m.fastN = 1
	}
	m.unit = bindUnits(&costs)
	m.hitU = unitCost{j: Picojoules(costs.CacheHit.Picojoules), c: costs.CacheHit.Cycles}
	m.missU = unitCost{j: Picojoules(costs.CacheMiss.Picojoules), c: costs.CacheMiss.Cycles}
	m.dramPerMiss = Joules(costs.DRAMJoulesPerMiss)
	return m
}

// Costs returns the meter's cost table.
func (m *Meter) Costs() CostTable { return m.costs }

// FastPath reports whether this meter charges through the precomputed fast
// path (JEPO_METER_FASTPATH at construction time).
func (m *Meter) FastPath() bool { return m.fast }

// Step charges n occurrences of op. The n==1 case — the dispatch loop's
// shape — adds the precomputed unit delta; larger counts recompute the
// product exactly as the slow path always has.
func (m *Meter) Step(op Op, n int) {
	if n == m.fastN {
		m.coreJ += m.unit[op].j
		m.cycles += m.unit[op].c
		m.opCounts[op]++
		return
	}
	m.stepSlow(op, n)
}

// stepSlow is the reference charge path: per-call table lookup and product.
// The fast paths must be indistinguishable from it bit for bit.
func (m *Meter) stepSlow(op Op, n int) {
	if n <= 0 {
		return
	}
	c := m.costs.Ops[op]
	f := float64(n)
	m.coreJ += Picojoules(c.Picojoules * f)
	m.cycles += c.Cycles * f
	m.opCounts[op] += uint64(n)
}

// Charge is one recorded Step call: op charged n times. Pre-aggregation
// passes record them so the meter can replay an instruction run's exact
// charge sequence later.
type Charge struct {
	Op Op
	N  int32
}

// StepList replays an ordered charge list, one Step call per entry. Entries
// are charged individually and in order — never summed across entries —
// because Joules accumulate in float64 and float addition is not
// associative: bit-exactness with the unaggregated execution requires the
// identical call sequence.
func (m *Meter) StepList(charges []Charge) {
	for i := range charges {
		m.Step(charges[i].Op, int(charges[i].N))
	}
}

// StepRun replays a bound charge list (CostTable.BindSteps) — the same
// per-entry additions StepList performs, with each entry's product already
// folded. The deltas must have been bound against this meter's cost table;
// callers that cannot prove that fall back to StepList.
func (m *Meter) StepRun(deltas []StepDelta) {
	for i := range deltas {
		d := &deltas[i]
		m.coreJ += d.CoreJ
		m.cycles += d.Cycles
		m.opCounts[d.Op] += d.N
	}
}

// Access routes a memory access of size bytes at addr through the cache model
// and charges the hit/miss costs. The single-line case (any access that does
// not span a line boundary) is charged through the unit deltas; spanning
// accesses take the general batched path.
func (m *Meter) Access(addr uint64, size int) {
	if m.fast {
		c := m.cache
		if size > 0 && (addr+uint64(size)-1)>>c.lineBits == addr>>c.lineBits {
			if m.cache.touch(addr >> c.lineBits) {
				m.coreJ += m.hitU.j
				m.cycles += m.hitU.c
			} else {
				m.coreJ += m.missU.j
				m.cycles += m.missU.c
				m.dramJ += m.dramPerMiss
			}
			return
		}
	}
	m.accessSlow(addr, size)
}

// accessSlow is the reference access path: batched hit/miss charges over
// however many lines the access covered. For a single-line access the fast
// path adds the identical bits: hits and misses are 0 or 1, and x*1.0 == x.
func (m *Meter) accessSlow(addr uint64, size int) {
	lines, missed := m.cache.Access(addr, size)
	hits := lines - missed
	if hits > 0 {
		m.coreJ += Picojoules(m.costs.CacheHit.Picojoules * float64(hits))
		m.cycles += m.costs.CacheHit.Cycles * float64(hits)
	}
	if missed > 0 {
		m.coreJ += Picojoules(m.costs.CacheMiss.Picojoules * float64(missed))
		m.cycles += m.costs.CacheMiss.Cycles * float64(missed)
		m.dramJ += Joules(m.costs.DRAMJoulesPerMiss * float64(missed))
	}
}

// AccessRun charges count accesses of size bytes at base, base+stride,
// base+2·stride, … — exactly the charge sequence of count individual Access
// calls, in one call: per access, the cache transition, then its hit or miss
// charge, in address order. Batched clients (array initialisation sweeps,
// replay harnesses) use it to shed the per-access call and branch overhead;
// the interleaving of hit and miss charges is preserved access by access
// because the order of float additions is observable in the joule bits.
func (m *Meter) AccessRun(base, stride uint64, count, size int) {
	if !m.fast {
		for k := 0; k < count; k++ {
			m.accessSlow(base+uint64(k)*stride, size)
		}
		return
	}
	c := m.cache
	span := uint64(size)
	addr := base
	for k := 0; k < count; k++ {
		if size > 0 && (addr+span-1)>>c.lineBits == addr>>c.lineBits {
			if m.cache.touch(addr >> c.lineBits) {
				m.coreJ += m.hitU.j
				m.cycles += m.hitU.c
			} else {
				m.coreJ += m.missU.j
				m.cycles += m.missU.c
				m.dramJ += m.dramPerMiss
			}
		} else {
			m.accessSlow(addr, size)
		}
		addr += stride
	}
}

// ArrayAccess charges one array-element access: the element step, the bounds
// check and the memory access, in that order — the fixed sequence of the
// interpreter's indexed load/store paths (OpLoadIndexL and friends),
// flattened into one concrete call.
func (m *Meter) ArrayAccess(addr uint64, size int) {
	if !m.fast {
		m.stepSlow(OpArrayElem, 1)
		m.stepSlow(OpBoundsCheck, 1)
		m.accessSlow(addr, size)
		return
	}
	u := &m.unit[OpArrayElem]
	m.coreJ += u.j
	m.cycles += u.c
	m.opCounts[OpArrayElem]++
	u = &m.unit[OpBoundsCheck]
	m.coreJ += u.j
	m.cycles += u.c
	m.opCounts[OpBoundsCheck]++
	if size > 0 && (addr+uint64(size)-1)>>m.cache.lineBits == addr>>m.cache.lineBits {
		if m.cache.touch(addr >> m.cache.lineBits) {
			m.coreJ += m.hitU.j
			m.cycles += m.hitU.c
		} else {
			m.coreJ += m.missU.j
			m.cycles += m.missU.c
			m.dramJ += m.dramPerMiss
		}
		return
	}
	m.accessSlow(addr, size)
}

// FieldAccess charges one instance-field access: the field step then the
// 8-byte slot access — the fixed sequence of every field load/store lane.
func (m *Meter) FieldAccess(addr uint64) {
	if !m.fast {
		m.stepSlow(OpField, 1)
		m.accessSlow(addr, 8)
		return
	}
	u := &m.unit[OpField]
	m.coreJ += u.j
	m.cycles += u.c
	m.opCounts[OpField]++
	// 8-byte slots are 8-aligned, so the access never spans a line.
	if m.cache.touch(addr >> m.cache.lineBits) {
		m.coreJ += m.hitU.j
		m.cycles += m.hitU.c
	} else {
		m.coreJ += m.missU.j
		m.cycles += m.missU.c
		m.dramJ += m.dramPerMiss
	}
}

// StaticAccess charges one static-field access: the static step then the
// 8-byte slot access — the fixed sequence of every static load/store lane.
func (m *Meter) StaticAccess(addr uint64) {
	if !m.fast {
		m.stepSlow(OpStatic, 1)
		m.accessSlow(addr, 8)
		return
	}
	u := &m.unit[OpStatic]
	m.coreJ += u.j
	m.cycles += u.c
	m.opCounts[OpStatic]++
	if m.cache.touch(addr >> m.cache.lineBits) {
		m.coreJ += m.hitU.j
		m.cycles += m.hitU.c
	} else {
		m.coreJ += m.missU.j
		m.cycles += m.missU.c
		m.dramJ += m.dramPerMiss
	}
}

// Alloc reserves size bytes of synthetic address space, 8-byte aligned, and
// returns the base address. Objects and arrays created by the interpreter
// live at these addresses so the cache model sees realistic layouts.
func (m *Meter) Alloc(size int) uint64 {
	if size < 0 {
		size = 0
	}
	base := m.heapCursor
	m.heapCursor += (uint64(size) + 7) &^ 7
	return base
}

// Sample is a point-in-time reading of the meter, in the same domain split
// RAPL exposes: package, core (PP0) and DRAM.
type Sample struct {
	Cycles  float64
	Elapsed time.Duration
	Core    Joules
	Package Joules
	DRAM    Joules
}

// Snapshot computes the current sample. Package energy is core energy plus
// the uncore static power integrated over modelled time.
func (m *Meter) Snapshot() Sample {
	secs := m.cycles / m.costs.FrequencyHz
	return Sample{
		Cycles:  m.cycles,
		Elapsed: time.Duration(secs * float64(time.Second)),
		Core:    m.coreJ,
		Package: m.coreJ + Joules(m.costs.UncoreWatts*secs),
		DRAM:    m.dramJ,
	}
}

// Sub returns the per-domain difference b − a. It is the measurement a pair
// of RAPL reads around a region of code yields.
func (b Sample) Sub(a Sample) Sample {
	return Sample{
		Cycles:  b.Cycles - a.Cycles,
		Elapsed: b.Elapsed - a.Elapsed,
		Core:    b.Core - a.Core,
		Package: b.Package - a.Package,
		DRAM:    b.DRAM - a.DRAM,
	}
}

// OpCount reports how many times op has been charged.
func (m *Meter) OpCount(op Op) uint64 { return m.opCounts[op] }

// CacheStats reports cumulative cache hits and misses.
func (m *Meter) CacheStats() (hits, misses uint64) { return m.cache.Hits(), m.cache.Misses() }

// Reset zeroes all accumulators, invalidates the cache and resets the
// synthetic heap.
func (m *Meter) Reset() {
	m.cycles = 0
	m.coreJ = 0
	m.dramJ = 0
	m.opCounts = [NumOps]uint64{}
	m.cache.Reset()
	m.heapCursor = 1 << 20
}

// Report renders a human-readable op-count breakdown, most frequent first.
// Ties break on op index, so the row order is a pure function of the counts:
// an unstable sort here made ops with equal counts swap lines between runs.
func (m *Meter) Report() string {
	type row struct {
		op Op
		n  uint64
	}
	rows := make([]row, 0, NumOps)
	for op := 0; op < NumOps; op++ {
		if m.opCounts[op] > 0 {
			rows = append(rows, row{Op(op), m.opCounts[op]})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].op < rows[j].op
	})
	var sb strings.Builder
	s := m.Snapshot()
	fmt.Fprintf(&sb, "package=%v core=%v dram=%v cycles=%.0f time=%v\n",
		s.Package, s.Core, s.DRAM, s.Cycles, s.Elapsed)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s %12d\n", r.op, r.n)
	}
	return sb.String()
}
