package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"jepo/internal/corpus"
)

// flattenReport projects a report onto comparable values: diagnostics carry
// Fix closures, which never compare equal, so determinism checks compare
// this projection (with float64 bit patterns, not rounded renderings).
func flattenReport(r *AnalysisReport) []string {
	out := []string{fmt.Sprintf("exec=%v note=%q baseline=%#x",
		r.Executable, r.ExecNote, math.Float64bits(float64(r.Baseline.Package)))}
	for _, d := range r.Diags {
		out = append(out, fmt.Sprintf("%s verdict=%v delta=%#x pct=%#x note=%q",
			d.Diagnostic, d.Verdict, math.Float64bits(float64(d.Delta)),
			math.Float64bits(d.DeltaPct), d.Note))
	}
	return out
}

func flattenCorpus(r *CorpusReport) []string {
	out := []string{r.Root}
	for _, fa := range r.Files {
		out = append(out, fa.Path)
		out = append(out, flattenReport(fa.Report)...)
	}
	return out
}

// miniCorpus is a small hand-built corpus project: a runnable file whose
// fixes can be measured, two library files with static findings, and one
// clean file.
func miniCorpus() *corpus.Project {
	return &corpus.Project{
		Root: "Mini",
		Files: []corpus.File{
			{Path: "weka/core/Work.java", Source: measurableProject},
			{Path: "weka/core/LibA.java", Source: `class LibA {
	double scale(double x) { return x * 2.0; }
}`},
			{Path: "weka/core/LibB.java", Source: `class LibB {
	int mask(int x) { return x % 16; }
}`},
			{Path: "weka/core/Clean.java", Source: `class Clean {
	int add(int a, int b) { return a + b; }
}`},
		},
	}
}

func TestAnalyzeAllCountsAndView(t *testing.T) {
	rep, tel, err := AnalyzeAll(context.Background(), miniCorpus(), AnalyzeConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Files) != 4 {
		t.Fatalf("%d file reports, want 4", len(rep.Files))
	}
	for i, fa := range rep.Files {
		if fa.Path != miniCorpus().Files[i].Path {
			t.Errorf("file %d committed as %s, want corpus order", i, fa.Path)
		}
	}
	flagged, diags, fixable := rep.Totals()
	if flagged < 2 || diags == 0 || fixable == 0 {
		t.Fatalf("totals flagged=%d diags=%d fixable=%d, want findings", flagged, diags, fixable)
	}
	// The runnable file's fixes must have been measured, the library files'
	// must not.
	if work := rep.Files[0].Report; !work.Executable || len(work.Accepted()) == 0 {
		t.Errorf("runnable corpus file not measured (executable=%v)", work.Executable)
	}
	if lib := rep.Files[1].Report; lib.Executable {
		t.Error("library corpus file claims to be executable")
	}
	if tel.Tasks != 4 {
		t.Errorf("telemetry tasks = %d, want 4", tel.Tasks)
	}
	view := CorpusView(rep)
	for _, want := range []string{"corpus Mini:", "4 files analyzed", "hottest files:"} {
		if !strings.Contains(view, want) {
			t.Errorf("corpus view missing %q:\n%s", want, view)
		}
	}
}

// TestAnalyzeAllJobsIndependent is the corpus-wide determinism contract: the
// report and its rendering are deeply equal at any worker count.
func TestAnalyzeAllJobsIndependent(t *testing.T) {
	p := miniCorpus()
	want, _, err := AnalyzeAll(context.Background(), p, AnalyzeConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4, 8} {
		got, _, err := AnalyzeAll(context.Background(), p, AnalyzeConfig{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(flattenCorpus(got), flattenCorpus(want)) {
			t.Errorf("jobs=%d: corpus report diverges from sequential", jobs)
		}
		if CorpusView(got) != CorpusView(want) {
			t.Errorf("jobs=%d: rendered corpus view diverges", jobs)
		}
	}
}

// TestAnalyzeJobsIndependent pins the per-fix measurement pool inside a
// single Analyze call to the same invariant.
func TestAnalyzeJobsIndependent(t *testing.T) {
	p := Project{"Work.java": measurableProject}
	want, err := Analyze(context.Background(), p, AnalyzeConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 4} {
		got, err := Analyze(context.Background(), p, AnalyzeConfig{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(flattenReport(got), flattenReport(want)) {
			t.Errorf("jobs=%d: analysis report diverges from sequential", jobs)
		}
		if AnalysisView(got) != AnalysisView(want) {
			t.Errorf("jobs=%d: rendered analysis diverges", jobs)
		}
	}
}
