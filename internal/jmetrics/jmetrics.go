// Package jmetrics computes the per-classifier source metrics of the paper's
// Table II — dependencies, attributes, methods, packages and LOC — over a
// mini-Java corpus, reproducing what the paper obtained from the Eclipse
// Metrics plug-in and the Class Dependency Analyzer (CDA).
//
// Dependencies of a root class are counted as the number of classes in its
// transitive reference closure (including the root); attributes, methods,
// packages and LOC are totals over that closure.
package jmetrics

import (
	"fmt"
	"sort"
	"strings"

	"jepo/internal/minijava/ast"
)

// SourceFile pairs a parsed file with its raw source (for LOC counting).
type SourceFile struct {
	AST    *ast.File
	Source string
}

// Metrics is one Table II row.
type Metrics struct {
	Root         string
	Dependencies int
	Attributes   int
	Methods      int
	Packages     int
	LOC          int
}

// Project indexes a corpus for metric queries.
type Project struct {
	files     []SourceFile
	classPkg  map[string]string   // class → package
	classFile map[string]int      // class → file index
	refs      map[string][]string // class → referenced classes
	fields    map[string]int
	methods   map[string]int
	classLOC  map[string]int
}

// NewProject indexes the given files. Classes referenced but not defined
// (builtins like String) are ignored in closures.
func NewProject(files []SourceFile) *Project {
	p := &Project{
		files:     files,
		classPkg:  map[string]string{},
		classFile: map[string]int{},
		refs:      map[string][]string{},
		fields:    map[string]int{},
		methods:   map[string]int{},
		classLOC:  map[string]int{},
	}
	for fi, sf := range files {
		fileLOC := countLOC(sf.Source)
		perClass := fileLOC
		if n := len(sf.AST.Classes); n > 1 {
			perClass = fileLOC / n
		}
		for _, c := range sf.AST.Classes {
			p.classPkg[c.Name] = sf.AST.Package
			p.classFile[c.Name] = fi
			p.fields[c.Name] = len(c.Fields)
			p.methods[c.Name] = len(c.Methods)
			p.classLOC[c.Name] = perClass
			p.refs[c.Name] = referencedClasses(c)
		}
	}
	return p
}

// countLOC counts non-blank source lines, as the Eclipse Metrics plug-in's
// "total lines of code" does.
func countLOC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// referencedClasses extracts every class name a class mentions: superclass,
// field/param/return types, constructed types, catch types and class-
// qualified references.
func referencedClasses(c *ast.Class) []string {
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && name != c.Name {
			seen[name] = true
		}
	}
	addType := func(t ast.Type) {
		if t.Kind == ast.ClassType {
			add(t.Name)
		}
	}
	add(c.Extends)
	for _, f := range c.Fields {
		addType(f.Type)
		if f.Init != nil {
			exprRefs(f.Init, add)
		}
	}
	for _, m := range c.Methods {
		addType(m.Ret)
		for _, pr := range m.Params {
			addType(pr.Type)
		}
		for _, th := range m.Throws {
			add(th)
		}
		if m.Body != nil {
			ast.Inspect(m.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.LocalVar:
					addType(x.Type)
				case *ast.New:
					add(x.Name)
				case *ast.NewArray:
					addType(x.Elem)
				case *ast.Cast:
					addType(x.Type)
				case *ast.InstanceOf:
					add(x.Name)
				case *ast.Select:
					if id, ok := x.X.(*ast.Ident); ok && startsUpper(id.Name) {
						add(id.Name)
					}
				case *ast.Call:
					if id, ok := x.Recv.(*ast.Ident); ok && startsUpper(id.Name) {
						add(id.Name)
					}
				}
				return true
			})
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func exprRefs(e ast.Expr, add func(string)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if nw, ok := n.(*ast.New); ok {
			add(nw.Name)
		}
		return true
	})
}

func startsUpper(s string) bool { return s != "" && s[0] >= 'A' && s[0] <= 'Z' }

// Closure computes the transitive reference closure of a root class,
// restricted to classes defined in the project.
func (p *Project) Closure(root string) ([]string, error) {
	if _, ok := p.classPkg[root]; !ok {
		return nil, fmt.Errorf("jmetrics: unknown class %s", root)
	}
	seen := map[string]bool{root: true}
	queue := []string{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ref := range p.refs[cur] {
			if _, defined := p.classPkg[ref]; !defined || seen[ref] {
				continue
			}
			seen[ref] = true
			queue = append(queue, ref)
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// Measure computes the Table II row for a root class.
func (p *Project) Measure(root string) (Metrics, error) {
	closure, err := p.Closure(root)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Root: root, Dependencies: len(closure)}
	pkgs := map[string]bool{}
	for _, cls := range closure {
		m.Attributes += p.fields[cls]
		m.Methods += p.methods[cls]
		m.LOC += p.classLOC[cls]
		pkgs[p.classPkg[cls]] = true
	}
	m.Packages = len(pkgs)
	return m, nil
}

// NumClasses is the total class count of the project (the paper reports WEKA
// at 3373 classes).
func (p *Project) NumClasses() int { return len(p.classPkg) }

// Table renders rows in the paper's Table II layout.
func Table(rows []Metrics) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %10s %8s %9s %8s\n",
		"Classifiers", "Dependencies", "Attributes", "Methods", "Packages", "LOC")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12d %10d %8d %9d %8d\n",
			r.Root, r.Dependencies, r.Attributes, r.Methods, r.Packages, r.LOC)
	}
	return sb.String()
}
