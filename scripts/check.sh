#!/bin/sh
# check.sh runs the full hygiene gate: formatting, vet, and the test suite
# under the race detector. CI and `make check` both call this script.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== fault matrix =="
go test -tags faultmatrix -run FaultMatrix ./internal/rapl/... ./internal/profile/...

echo "== engine diff =="
# The bytecode VM and the tree-walker must be observationally identical:
# results, output, op counts and energy bits, over the Table I corpus and
# seeded random programs.
go test -tags enginediff -run EngineDiff ./internal/minijava/interp

echo "== sched diff =="
# Differential fuzz for the worker pool: random task counts, worker counts
# and fault plans must merge to identical results and Health ledgers at any
# parallelism.
go test -tags scheddiff -run SchedDifferentialFuzz ./internal/sched

echo "== dist diff =="
# Differential fuzz for the fault-tolerant process dispatcher: random task
# counts, worker counts and chaos plans (kills, hangs, slow-walks, corrupted
# replies) must merge to results, commit ledgers and Health tallies that are
# bit-identical to the inline run.
go test -tags distdiff -run DistDifferentialFuzz ./internal/dist

echo "== golden battery: both engines, cold and warm, across -jobs and -workers =="
# The golden energy battery must reproduce the golden file bit for bit on
# both engines cold (Determinism), agree bit for bit between engines when
# each case runs twice on one instance so the VM executes its quickened
# copies (WarmExecution), survive sharding over the pool at -jobs 1, 4
# and GOMAXPROCS (SchedJobs), survive the dist worker protocol with a
# mid-campaign kill (DistWorkers), and reproduce the golden through the
# artifact engine's cached parse/program path, cold and warm (EngineCache).
go test -run 'GoldenEnergyDeterminism|GoldenEnergyWarmExecution|GoldenEnergySchedJobs|GoldenEnergyDistWorkers|GoldenEnergyEngineCache' ./internal/tables

echo "== metering fast path off: golden battery =="
# The metering fast path (precomputed unit deltas, bound charge runs, fused
# access helpers) must be a pure speed knob: with JEPO_METER_FASTPATH=off
# every charge routes through the original slow paths, and the golden energy
# battery must still reproduce the goldens bit for bit.
JEPO_METER_FASTPATH=off go test -run 'GoldenEnergyDeterminism|GoldenEnergyWarmExecution' ./internal/tables

echo "== -jobs byte-identity =="
# CLI stdout must be byte-identical at any -jobs value (pool telemetry goes
# to stderr). Diff sequential vs parallel output of the analyzer and the
# classifier table.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/jepo analyze -jobs 1 examples/java >"$tmpdir/analyze.1" 2>/dev/null
go run ./cmd/jepo analyze -jobs 4 examples/java >"$tmpdir/analyze.4" 2>/dev/null
if ! cmp -s "$tmpdir/analyze.1" "$tmpdir/analyze.4"; then
    echo "jepo analyze stdout differs between -jobs 1 and -jobs 4" >&2
    diff -u "$tmpdir/analyze.1" "$tmpdir/analyze.4" >&2 || true
    exit 1
fi
go run ./cmd/wekaexp -table 2 -jobs 1 >"$tmpdir/table2.1" 2>/dev/null
go run ./cmd/wekaexp -table 2 -jobs 4 >"$tmpdir/table2.4" 2>/dev/null
if ! cmp -s "$tmpdir/table2.1" "$tmpdir/table2.4"; then
    echo "wekaexp -table 2 stdout differs between -jobs 1 and -jobs 4" >&2
    diff -u "$tmpdir/table2.1" "$tmpdir/table2.4" >&2 || true
    exit 1
fi

echo "== metering fast path byte-identity =="
# Same transparency at the CLI surface: analyzer stdout (measured energy
# included) must be byte-identical with the fast path on and off.
JEPO_METER_FASTPATH=off go run ./cmd/jepo analyze examples/java >"$tmpdir/analyze.slowmeter" 2>/dev/null
if ! cmp -s "$tmpdir/analyze.1" "$tmpdir/analyze.slowmeter"; then
    echo "jepo analyze stdout differs between JEPO_METER_FASTPATH=off and the default" >&2
    diff -u "$tmpdir/analyze.1" "$tmpdir/analyze.slowmeter" >&2 || true
    exit 1
fi

echo "== -cache byte-identity =="
# The artifact cache is a pure cost knob: CLI stdout must be byte-identical
# with the cache on (default) and off. Cache statistics go to stderr.
go run ./cmd/jepo analyze -cache=false examples/java >"$tmpdir/analyze.nocache" 2>/dev/null
if ! cmp -s "$tmpdir/analyze.1" "$tmpdir/analyze.nocache"; then
    echo "jepo analyze stdout differs between -cache=false and the cached default" >&2
    diff -u "$tmpdir/analyze.1" "$tmpdir/analyze.nocache" >&2 || true
    exit 1
fi
go run ./cmd/wekaexp -table 2 -cache=false >"$tmpdir/table2.nocache" 2>/dev/null
if ! cmp -s "$tmpdir/table2.1" "$tmpdir/table2.nocache"; then
    echo "wekaexp -table 2 stdout differs between -cache=false and the cached default" >&2
    diff -u "$tmpdir/table2.1" "$tmpdir/table2.nocache" >&2 || true
    exit 1
fi

echo "== -workers byte-identity under faults =="
# The distributed campaign drill: -workers 4 with one worker process killed
# and one hung mid-campaign must quarantine both nodes, finish the table,
# and keep stdout byte-identical to the sequential run. The quarantine tally
# is asserted from the dispatch report on stderr.
JEPO_DIST_FAULTS="1:kill@1;2:hang@0" go run ./cmd/wekaexp -table 2 -workers 4 -node-deadline 5s \
    >"$tmpdir/table2.w4" 2>"$tmpdir/table2.w4.err"
if ! cmp -s "$tmpdir/table2.1" "$tmpdir/table2.w4"; then
    echo "wekaexp -table 2 stdout differs between -workers 1 and faulted -workers 4" >&2
    diff -u "$tmpdir/table2.1" "$tmpdir/table2.w4" >&2 || true
    exit 1
fi
if ! grep -q 'quarantined=2' "$tmpdir/table2.w4.err"; then
    echo "dispatch report did not record the two quarantined workers:" >&2
    cat "$tmpdir/table2.w4.err" >&2
    exit 1
fi

echo "== jepo analyze golden =="
# Rule drift shows up here the way energy drift shows up in golden_test.go:
# the analyzer's measured diagnostic listing over the example corpus must
# match the checked-in golden byte for byte.
if ! go run ./cmd/jepo analyze examples/java | diff -u examples/java/golden_analyze.txt -; then
    echo "jepo analyze output drifted from examples/java/golden_analyze.txt" >&2
    echo "regenerate (after auditing the diff) with:" >&2
    echo "    go run ./cmd/jepo analyze examples/java > examples/java/golden_analyze.txt" >&2
    exit 1
fi

echo "== jperf disasm golden =="
# Compiler drift shows up as a bytecode diff: the example program's
# disassembly must match the checked-in golden byte for byte.
if ! go run ./cmd/jperf disasm examples/java/EnergyDemo.java | diff -u examples/java/golden_disasm.txt -; then
    echo "jperf disasm output drifted from examples/java/golden_disasm.txt" >&2
    echo "regenerate (after auditing the diff) with:" >&2
    echo "    go run ./cmd/jperf disasm examples/java/EnergyDemo.java > examples/java/golden_disasm.txt" >&2
    exit 1
fi

echo "== jperf disasm -warm golden =="
# Runtime-quickening drift shows up the same way: after one main execution
# the instance's patched code copies must match the checked-in warm golden.
if ! go run ./cmd/jperf disasm -warm examples/java/EnergyDemo.java | diff -u examples/java/golden_disasm_warm.txt -; then
    echo "warm disassembly drifted from examples/java/golden_disasm_warm.txt" >&2
    echo "regenerate (after auditing the diff) with:" >&2
    echo "    go run ./cmd/jperf disasm -warm examples/java/EnergyDemo.java > examples/java/golden_disasm_warm.txt" >&2
    exit 1
fi

# The session daemon must be a byte-transparent transport: a scripted
# session analyze and a Table II regeneration over HTTP must match the CLI
# stdout byte for byte, and SIGTERM must drain to a clean exit. The script
# prints its own "== jepod serve gate ==" header.
sh scripts/serve_check.sh

echo "OK"
