//go:build faultmatrix

package rapl

import (
	"testing"

	"jepo/internal/energy"
)

// TestFaultMatrixResilientSurvivesRandomFaults drives the resilient wrapper
// over randomly faulting sources across many seeds and fault mixes. With a
// fallback configured the wrapper must never surface an error, must keep
// every domain monotonic, and must keep its health ledger consistent with
// what the fault injector actually did.
func TestFaultMatrixResilientSurvivesRandomFaults(t *testing.T) {
	mixes := []FaultRates{
		{Transient: 0.15},
		{Stale: 0.25},
		{Transient: 0.10, Stale: 0.10, Permanent: 0.02},
		{Transient: 0.30, Stale: 0.20, Permanent: 0.05},
		{Permanent: 0.10},
	}
	const reads = 200
	for mi, rates := range mixes {
		for seed := uint64(1); seed <= 40; seed++ {
			meter := energy.NewMeter(energy.DefaultCosts())
			primary := NewRandomFaultySource(NewSimSource(meter), seed, rates)
			res := NewResilient(primary,
				WithFallback(NewSimSource(meter)),
				WithRetries(2), WithBackoff(func(int) {}))
			var prev Snapshot
			for i := 0; i < reads; i++ {
				meter.Step(energy.OpModInt, 5_000)
				snap, err := res.Snapshot()
				if err != nil {
					t.Fatalf("mix %d seed %d read %d: resilient source with fallback errored: %v", mi, seed, i, err)
				}
				for _, d := range []Domain{Package, Core, DRAM} {
					if snap.Domain(d) < prev.Domain(d) {
						t.Fatalf("mix %d seed %d read %d: %v went backwards: %v -> %v",
							mi, seed, i, d, prev.Domain(d), snap.Domain(d))
					}
				}
				prev = snap
			}
			h := res.Health()
			if h.Reads != reads {
				t.Errorf("mix %d seed %d: health reads = %d, want %d", mi, seed, h.Reads, reads)
			}
			if primary.Dead() {
				if h.Discontinuities != 1 {
					t.Errorf("mix %d seed %d: primary died but discontinuities = %d", mi, seed, h.Discontinuities)
				}
				if h.Fallbacks == 0 {
					t.Errorf("mix %d seed %d: primary died but no fallback reads", mi, seed)
				}
			}
			if primary.Injected() > 0 && !h.Degraded() {
				// Stale injections can be absorbed invisibly (the repeat is a
				// valid zero-delta snapshot), so only demand a degraded ledger
				// when harder faults were actually delivered.
				if h.Retries == 0 && h.Interpolated == 0 && h.Fallbacks == 0 && rates.Transient+rates.Permanent > 0 {
					t.Errorf("mix %d seed %d: %d faults injected yet health clean: %s",
						mi, seed, primary.Injected(), h)
				}
			}
		}
	}
}

// TestFaultMatrixNoFallbackStaysMonotonic drops the fallback: reads may
// error once the retry/interpolation ladder is exhausted, but every snapshot
// that does come back must still be monotonic.
func TestFaultMatrixNoFallbackStaysMonotonic(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		meter := energy.NewMeter(energy.DefaultCosts())
		primary := NewRandomFaultySource(NewSimSource(meter), seed,
			FaultRates{Transient: 0.25, Stale: 0.15, Permanent: 0.03})
		res := NewResilient(primary, WithRetries(1), WithMaxMisses(2), WithBackoff(func(int) {}))
		var prev Snapshot
		for i := 0; i < 150; i++ {
			meter.Step(energy.OpModInt, 2_000)
			snap, err := res.Snapshot()
			if err != nil {
				continue // exhausted ladder with no fallback: error is the contract
			}
			for _, d := range []Domain{Package, Core, DRAM} {
				if snap.Domain(d) < prev.Domain(d) {
					t.Fatalf("seed %d read %d: %v went backwards after faults", seed, i, d)
				}
			}
			prev = snap
		}
		if h := res.Health(); h.Reads != 150 {
			t.Errorf("seed %d: health reads = %d, want 150", seed, h.Reads)
		}
	}
}

// TestFaultMatrixScriptedMSRSampler fuzzes the sampler's unwrap against
// random wrapping/stale counter sequences generated from the seeded stream:
// accumulated energy never decreases and stale skips are tallied.
func TestFaultMatrixScriptedMSRSampler(t *testing.T) {
	for seed := uint64(1); seed <= 80; seed++ {
		rng := faultRNG{state: seed}
		cur := uint64(rng.next() & 0xFFFF_FFFF)
		seq := []uint64{cur}
		staleWanted := 0
		for i := 0; i < 100; i++ {
			switch {
			case rng.float64() < 0.10: // stale repeat
				seq = append(seq, seq[len(seq)-1])
			case rng.float64() < 0.05: // backwards glitch
				glitch := (seq[len(seq)-1] - 1 - rng.next()%1000) & 0xFFFF_FFFF
				seq = append(seq, glitch)
				staleWanted++
				cur = glitch
			default:
				cur = (cur + rng.next()%(1<<24)) & 0xFFFF_FFFF // may wrap
				seq = append(seq, cur)
			}
		}
		msr := &ScriptedMSR{Seq: map[uint32][]uint64{
			MSRPkgEnergyStatus:  seq,
			MSRPP0EnergyStatus:  {0},
			MSRDRAMEnergyStatus: {0},
		}}
		s, err := NewSampler(msr)
		if err != nil {
			t.Fatal(err)
		}
		var prev Snapshot
		for i := range seq {
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatalf("seed %d read %d: %v", seed, i, err)
			}
			if snap.Package < prev.Package {
				t.Fatalf("seed %d read %d: package decreased", seed, i)
			}
			prev = snap
		}
		if h := s.Health(); h.Resets < staleWanted {
			t.Errorf("seed %d: %d backwards glitches injected, only %d skips tallied", seed, staleWanted, h.Resets)
		}
	}
}
