package core

import (
	"context"
	"strings"
	"testing"

	"jepo/internal/energy"
	"jepo/internal/suggest"
)

const measurableProject = `class Work {
	public static void main(String[] args) {
		long total = 0;
		for (int i = 0; i < 200; i++) {
			total = total + i % 8;
		}
		System.out.println(total);
	}
}`

func TestAnalyzeMeasuresFixes(t *testing.T) {
	rep, err := Analyze(context.Background(), Project{"Work.java": measurableProject}, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Executable {
		t.Fatalf("project with main not executable: %s", rep.ExecNote)
	}
	if rep.Baseline.Package <= 0 {
		t.Fatalf("baseline package energy = %v", rep.Baseline.Package)
	}
	var measured int
	for _, d := range rep.Diags {
		if d.Verdict == VerdictAccepted || d.Verdict == VerdictRejected {
			measured++
		}
		if d.Fix == nil && d.Verdict != VerdictAdvisory {
			t.Errorf("%s: fixless diagnostic has verdict %v", d.Diagnostic, d.Verdict)
		}
	}
	if measured == 0 {
		t.Fatal("no fix was measured")
	}
	// The modulus masking fix replaces a very expensive op with a cheap one;
	// it must measure a positive saving.
	foundMod := false
	for _, d := range rep.Diags {
		if d.Rule == suggest.RuleModulusOperator && d.Fix != nil {
			foundMod = true
			if d.Verdict != VerdictAccepted || d.Delta <= 0 {
				t.Errorf("modulus fix: verdict=%v Δ=%v, want accepted with positive Δ", d.Verdict, d.Delta)
			}
			if d.DeltaPct <= 0 {
				t.Errorf("modulus fix: DeltaPct = %v", d.DeltaPct)
			}
		}
	}
	if !foundMod {
		t.Error("no applicable modulus diagnostic found")
	}
	if len(rep.Accepted()) == 0 {
		t.Error("no fix accepted")
	}
	view := AnalysisView(rep)
	if !strings.Contains(view, "baseline:") || !strings.Contains(view, "fix accepted") {
		t.Errorf("view missing measurement lines:\n%s", view)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	p := Project{"Work.java": measurableProject}
	a, err := Analyze(context.Background(), p, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(context.Background(), p, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if AnalysisView(a) != AnalysisView(b) {
		t.Error("two Analyze runs disagree")
	}
}

func TestAnalyzeWithoutMain(t *testing.T) {
	rep, err := Analyze(context.Background(), Project{"Lib.java": `class Lib {
	double scale(double x) { return x * 2.0; }
}`}, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executable || rep.ExecNote == "" {
		t.Fatalf("library project reported executable (note %q)", rep.ExecNote)
	}
	for _, d := range rep.Diags {
		if d.Verdict == VerdictAccepted || d.Verdict == VerdictRejected {
			t.Errorf("%s: measured verdict without a runnable main", d.Diagnostic)
		}
		if d.Fix != nil && (d.Verdict != VerdictUnmeasured || d.Note == "") {
			t.Errorf("%s: verdict=%v note=%q, want unmeasured with note", d.Diagnostic, d.Verdict, d.Note)
		}
	}
	if !strings.Contains(AnalysisView(rep), "measurement disabled") {
		t.Error("view does not say measurement is disabled")
	}
}

func TestAnalyzeRejectsFixThatCostsEnergy(t *testing.T) {
	// Invert the literal costs: scientific-notation constants become far more
	// expensive than plain decimals, so the sci rewrite measures a loss and
	// the engine must refuse it instead of trusting the rule.
	costs := energy.DefaultCosts()
	costs.Ops[energy.OpConstSci] = energy.Cost{Picojoules: 900000, Cycles: 90}
	rep, err := Analyze(context.Background(), Project{"Sci.java": `class Sci {
	public static void main(String[] args) {
		double t = 0.5;
		for (int i = 0; i < 40; i++) {
			t = t + 100000.0;
		}
		System.out.println(t);
	}
}`}, AnalyzeConfig{Costs: &costs})
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for _, d := range rep.Diags {
		if d.Rule == suggest.RuleScientificNotation && d.Fix != nil {
			if d.Verdict != VerdictRejected || d.Delta >= 0 {
				t.Errorf("sci fix under inverted costs: verdict=%v Δ=%v, want rejected negative", d.Verdict, d.Delta)
			}
			rejected = d.Verdict == VerdictRejected
		}
	}
	if !rejected {
		t.Fatal("no scientific-notation fix was rejected")
	}
	if !strings.Contains(AnalysisView(rep), "REJECTED") {
		t.Error("view does not flag the rejected fix")
	}
}
