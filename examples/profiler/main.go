// Profiler example: find the energy-hungry method in a multi-method program,
// exactly as the paper's Fig. 4 profiler view does — every method gets
// JEPO.enter/JEPO.exit probes injected, each probe reads the RAPL counters,
// and each execution of each method is recorded separately into result.txt.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"jepo/internal/core"
)

const source = `
package weka.demo;

public class Pipeline {
	static double parse(int rows) {
		double checksum = 0.0;
		for (int i = 0; i < rows; i++) {
			checksum += i * 0.5;
		}
		return checksum;
	}

	static int[] normalize(int rows) {
		int[] out = new int[rows];
		for (int i = 0; i < rows; i++) {
			out[i] = i % 7;
		}
		return out;
	}

	static int train(int[] feats, int passes) {
		int acc = 0;
		for (int p = 0; p < passes; p++) {
			for (int i = 0; i < feats.length; i++) {
				acc += feats[i] * feats[i];
			}
		}
		return acc;
	}

	public static void main(String[] args) {
		double c = parse(2000);
		int[] feats = normalize(2000);
		int model = train(feats, 5);
		model = train(feats, 5);
		System.out.println(c + " " + model);
	}
}
`

func main() {
	res, err := core.Profile(context.Background(), core.Project{"Pipeline.java": source}, core.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program output:", res.Stdout)
	fmt.Println("--- JEPO profiler view (Fig. 4) ---")
	fmt.Print(res.View())

	// Per-execution records, as stored in result.txt: train ran twice, so it
	// has two rows.
	fmt.Println("--- per-execution records ---")
	for _, r := range res.Profiler.Records() {
		fmt.Printf("%-28s exec %d  %10v  %12v\n", r.Method, r.Seq, r.Elapsed, r.Package)
	}
	if err := res.Profiler.WriteResultTxt("result.txt"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote result.txt")
	os.Remove("result.txt") // keep the example rerunnable without litter
}
