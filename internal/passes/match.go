package passes

import (
	"sort"

	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// AnalyzeFiles runs every registered pass over the files — one shared
// traversal per file — and returns the diagnostics ordered by line within
// each file, preserving the file order.
func AnalyzeFiles(files []*ast.File) []Diagnostic {
	return analyze(files, nil)
}

// AnalyzeFilesRules restricts the analysis to the given rules (all rules when
// none are given). Restricting at match time, not by filtering afterwards,
// reproduces the rule-subset dynamics of the old per-rule rewriters: a
// disabled pass neither emits diagnostics nor influences another pass's fix
// attachment (e.g. a string-accumulation cluster only claims its declaration's
// ternary initializer when the concat pass actually runs).
func AnalyzeFilesRules(files []*ast.File, rules ...Rule) []Diagnostic {
	if len(rules) == 0 {
		return analyze(files, nil)
	}
	enabled := map[Rule]bool{}
	for _, r := range rules {
		enabled[r] = true
	}
	return analyze(files, enabled)
}

func analyze(files []*ast.File, enabled map[Rule]bool) []Diagnostic {
	on := func(r Rule) bool { return enabled == nil || enabled[r] }
	var plans map[*ast.Field]*hoistPlan
	if on(RuleStaticKeyword) {
		plans = analyzeStatics(files)
	}
	var out []Diagnostic
	for _, f := range files {
		start := len(out)
		for _, c := range f.Classes {
			m := &matcher{
				file: f, class: c, enabled: enabled, hoist: plans,
				types:        map[string]ast.Type{},
				nonNeg:       map[string]bool{},
				cmpFix:       map[*ast.Call]*Fix{},
				clusterDecls: map[*ast.LocalVar]bool{},
			}
			for _, fd := range c.Fields {
				m.types[fd.Name] = fd.Type
			}
			fieldTypes := m.types
			for _, fd := range c.Fields {
				m.fieldDecl(fd)
			}
			for _, mt := range c.Methods {
				m.types = map[string]ast.Type{}
				for k, v := range fieldTypes {
					m.types[k] = v
				}
				m.methodDecl(mt)
			}
			out = append(out, m.found...)
		}
		chunk := out[start:]
		sort.SliceStable(chunk, func(i, j int) bool { return chunk[i].Line < chunk[j].Line })
	}
	return out
}

// matcher carries the traversal state one class's analysis needs. Hooks read
// it to decide both whether a rule matches and whether its fix is safe here.
type matcher struct {
	file      *ast.File
	class     *ast.Class
	curMethod string
	inMethod  bool
	loopDepth int
	found     []Diagnostic
	enabled   map[Rule]bool // nil = all rules

	// types records declared types of fields, params and locals in scope so
	// the string rules can distinguish String '+' from numeric '+'.
	types map[string]ast.Type

	// arrayLitDepth > 0 while inside an array literal. Fixes that the apply
	// traversal only reaches outside array literals in method bodies are
	// suppressed there (field initializers are traversed in full).
	arrayLitDepth int

	// nonNeg tracks counted loop variables that start at a non-negative
	// literal and only increment — safe targets for modulus masking.
	nonNeg map[string]bool

	// cmpFix carries a compareTo-equality fix from the Binary where the shape
	// is visible to the Call where the diagnostic is emitted.
	cmpFix map[*ast.Call]*Fix

	// clusterDecls marks declarations claimed by a string-accumulation
	// cluster; their ternary initializers must not also be expanded.
	clusterDecls map[*ast.LocalVar]bool

	// pendTern marks the one ternary currently in statement position (local
	// initializer, plain-assignment RHS, or return operand), where expansion
	// to if-then-else is possible.
	pendTern    *ast.Ternary
	pendTernFix *Fix

	// hoist maps static fields to their hoisting plan (cross-file analysis).
	hoist map[*ast.Field]*hoistPlan
}

func (m *matcher) on(r Rule) bool { return m.enabled == nil || m.enabled[r] }

func (m *matcher) add(pos token.Pos, r Rule, detail string, fx *Fix) {
	sev := SeverityInfo
	if fx != nil {
		sev = SeverityFixable
		fx.rule = r
	}
	m.found = append(m.found, Diagnostic{
		File: m.file.Path, Class: m.class.Name, Method: m.curMethod,
		Line: pos.Line, Rule: r, Detail: detail, Severity: sev, Fix: fx,
	})
}

// declSite describes one declared type: a field, a parameter, or a local.
// Exactly one of field/paramType/local is set; typeFix anchors the rewrite
// accordingly.
type declSite struct {
	pos       token.Pos
	typ       ast.Type
	what      string // "field 'x'", "parameter 'x'", "local 'x'"
	field     *ast.Field
	paramType *ast.Type
	local     *ast.LocalVar
}

// Hook dispatch: each site consults the registry in order, skipping passes
// that are disabled for this analysis.

func (m *matcher) declHooks(d *declSite) {
	for _, p := range Registry {
		if p.Decl != nil && m.on(p.Rule) {
			p.Decl(m, d)
		}
	}
}

func (m *matcher) fieldHooks(f *ast.Field) {
	for _, p := range Registry {
		if p.Field != nil && m.on(p.Rule) {
			p.Field(m, f)
		}
	}
}

func (m *matcher) blockHooks(b *ast.Block) {
	for _, p := range Registry {
		if p.Block != nil && m.on(p.Rule) {
			p.Block(m, b)
		}
	}
}

func (m *matcher) nodeHooks(n ast.Node) {
	for _, p := range Registry {
		if p.Node != nil && m.on(p.Rule) {
			p.Node(m, n)
		}
	}
}

func (m *matcher) fieldDecl(fd *ast.Field) {
	m.curMethod = ""
	m.inMethod = false
	m.declHooks(&declSite{pos: fd.Pos, typ: fd.Type,
		what: "field '" + fd.Name + "'", field: fd})
	m.fieldHooks(fd)
	if fd.Init != nil {
		m.walkExpr(fd.Init)
	}
}

func (m *matcher) methodDecl(mt *ast.Method) {
	m.curMethod = mt.Name
	m.inMethod = true
	for i := range mt.Params {
		p := &mt.Params[i]
		m.types[p.Name] = p.Type
		m.declHooks(&declSite{pos: mt.Pos, typ: p.Type,
			what: "parameter '" + p.Name + "'", paramType: &p.Type})
	}
	if mt.Body != nil {
		m.walkStmt(mt.Body)
	}
}

func (m *matcher) setPend(t *ast.Ternary, fx *Fix) {
	m.pendTern, m.pendTernFix = t, fx
}

func (m *matcher) clearPend() {
	m.pendTern, m.pendTernFix = nil, nil
}

func (m *matcher) walkStmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		m.blockHooks(n)
		for _, st := range n.Stmts {
			m.walkStmt(st)
		}
	case *ast.LocalVar:
		m.types[n.Name] = n.Type
		m.declHooks(&declSite{pos: n.Pos, typ: n.Type,
			what: "local '" + n.Name + "'", local: n})
		if n.Init != nil {
			if t, ok := n.Init.(*ast.Ternary); ok && !m.clusterDecls[n] {
				m.setPend(t, ternFixLocal(n, t))
			}
			m.walkExpr(n.Init)
			m.clearPend()
		}
	case *ast.ExprStmt:
		if as, ok := n.X.(*ast.Assign); ok && as.Op == token.Assign {
			if t, ok := as.RHS.(*ast.Ternary); ok {
				m.setPend(t, ternFixAssign(n, as, t))
			}
		}
		m.walkExpr(n.X)
		m.clearPend()
	case *ast.If:
		m.walkExpr(n.Cond)
		m.walkStmt(n.Then)
		if n.Else != nil {
			m.walkStmt(n.Else)
		}
	case *ast.While:
		m.walkExpr(n.Cond)
		m.loopDepth++
		m.walkStmt(n.Body)
		m.loopDepth--
	case *ast.DoWhile:
		m.loopDepth++
		m.walkStmt(n.Body)
		m.loopDepth--
		m.walkExpr(n.Cond)
	case *ast.Switch:
		m.walkExpr(n.Tag)
		for _, c := range n.Cases {
			for _, v := range c.Values {
				m.walkExpr(v)
			}
			for _, st := range c.Stmts {
				m.walkStmt(st)
			}
		}
	case *ast.For:
		m.checkFor(n)
	case *ast.Return:
		if n.X != nil {
			if t, ok := n.X.(*ast.Ternary); ok {
				m.setPend(t, ternFixReturn(n, t))
			}
			m.walkExpr(n.X)
			m.clearPend()
		}
	case *ast.Throw:
		m.nodeHooks(n)
		m.walkExpr(n.X)
	case *ast.Try:
		m.nodeHooks(n)
		m.walkStmt(n.Block)
		for _, c := range n.Catches {
			m.walkStmt(c.Block)
		}
		if n.Finally != nil {
			m.walkStmt(n.Finally)
		}
	}
}

func (m *matcher) checkFor(n *ast.For) {
	// Track the loop variable before walking the header, so a modulus in the
	// loop's own condition or post expressions can already be masked.
	tracked := ""
	if lv, ok := n.Init.(*ast.LocalVar); ok {
		if lit, isLit := lv.Init.(*ast.Literal); isLit && lit.Kind == ast.LitInt && lit.I >= 0 {
			if len(n.Post) == 1 {
				if u, isU := n.Post[0].(*ast.Unary); isU && u.Op == token.Inc {
					tracked = lv.Name
					m.nonNeg[tracked] = true
				}
			}
		}
	}
	if n.Init != nil {
		m.walkStmt(n.Init)
	}
	if n.Cond != nil {
		m.walkExpr(n.Cond)
	}
	for _, p := range n.Post {
		m.walkExpr(p)
	}
	m.nodeHooks(n) // the loop-shaped passes: arraycopy, traversal
	m.loopDepth++
	m.walkStmt(n.Body)
	m.loopDepth--
	if tracked != "" {
		delete(m.nonNeg, tracked)
	}
}

// walkExpr visits expressions pre-order, in Inspect's child order, firing the
// node hooks at every node.
func (m *matcher) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	m.nodeHooks(e)
	switch n := e.(type) {
	case *ast.Binary:
		m.walkExpr(n.X)
		m.walkExpr(n.Y)
	case *ast.Unary:
		m.walkExpr(n.X)
	case *ast.Assign:
		m.walkExpr(n.LHS)
		m.walkExpr(n.RHS)
	case *ast.Ternary:
		m.walkExpr(n.Cond)
		m.walkExpr(n.Then)
		m.walkExpr(n.Else)
	case *ast.Call:
		if n.Recv != nil {
			m.walkExpr(n.Recv)
		}
		for _, a := range n.Args {
			m.walkExpr(a)
		}
	case *ast.Select:
		m.walkExpr(n.X)
	case *ast.Index:
		m.walkExpr(n.X)
		m.walkExpr(n.I)
	case *ast.New:
		for _, a := range n.Args {
			m.walkExpr(a)
		}
	case *ast.NewArray:
		for _, l := range n.Lens {
			m.walkExpr(l)
		}
	case *ast.ArrayLit:
		m.arrayLitDepth++
		for _, el := range n.Elems {
			m.walkExpr(el)
		}
		m.arrayLitDepth--
	case *ast.Cast:
		m.walkExpr(n.X)
	case *ast.InstanceOf:
		m.walkExpr(n.X)
	}
}

// isStringExpr reports whether an expression is statically known to be a
// String: a string literal, a String-typed name, or itself a string concat.
func (m *matcher) isStringExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Kind == ast.LitString
	case *ast.Ident:
		t, ok := m.types[x.Name]
		return ok && t.IsString()
	case *ast.Binary:
		return x.Op == token.Plus && (m.isStringExpr(x.X) || m.isStringExpr(x.Y))
	case *ast.Call:
		switch x.Name {
		case "toString", "substring", "trim", "concat":
			return true
		}
	}
	return false
}
