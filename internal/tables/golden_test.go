package tables

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"jepo/internal/airlines"
	"jepo/internal/corpus"
	"jepo/internal/energy"
	cache "jepo/internal/engine"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/refactor"
	"jepo/internal/sched"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden_energy.json")

// goldenRecord pins one program's complete energy fingerprint. Joules and
// cycles are stored as float64 bit patterns so the comparison is exact: the
// interpreter optimization work (slot frames, call-site caches, pooling) must
// not move a single charge.
type goldenRecord struct {
	Name     string            `json:"name"`
	Output   string            `json:"output"`
	OpCounts map[string]uint64 `json:"op_counts"`
	Cycles   uint64            `json:"cycles_bits"`
	Package  uint64            `json:"package_bits"`
	Core     uint64            `json:"core_bits"`
	DRAM     uint64            `json:"dram_bits"`
	// Human-readable mirrors, ignored by the comparison.
	PackageJ float64 `json:"package_joules"`
	CycleF   float64 `json:"cycles"`
}

// goldenCase is one battery entry in error-returning form, so the battery
// can run sequentially under testing.T or be sharded across the sched pool.
type goldenCase struct {
	name string
	run  func() (goldenRecord, error)
}

// fingerprint runs one program `runs` times against a fresh interpreter and
// meter and captures the cumulative charge fingerprint plus whatever it
// printed. With runs > 1 the later drives execute the instance's warm
// (quickened) code copies, so the fingerprint covers tier 2's runtime
// patching as well as the cold path.
func fingerprint(engine interp.Engine, name string, runs int, load func() (*interp.Program, error), drive func(in *interp.Interp) error) (goldenRecord, error) {
	prog, err := load()
	if err != nil {
		return goldenRecord{}, err
	}
	in := interp.New(prog, energy.NewMeter(energy.DefaultCosts()), interp.WithMaxOps(2_000_000_000), interp.WithEngine(engine))
	for r := 0; r < runs; r++ {
		if err := drive(in); err != nil {
			return goldenRecord{}, err
		}
	}
	m := in.Meter()
	s := m.Snapshot()
	counts := map[string]uint64{}
	for op := 0; op < energy.NumOps; op++ {
		if n := m.OpCount(energy.Op(op)); n > 0 {
			counts[energy.Op(op).String()] = n
		}
	}
	return goldenRecord{
		Name:     name,
		Output:   in.Output(),
		OpCounts: counts,
		Cycles:   math.Float64bits(s.Cycles),
		Package:  math.Float64bits(float64(s.Package)),
		Core:     math.Float64bits(float64(s.Core)),
		DRAM:     math.Float64bits(float64(s.DRAM)),
		PackageJ: float64(s.Package),
		CycleF:   s.Cycles,
	}, nil
}

// goldenCases builds the full determinism battery: every Table I variant
// plus the RandomForest Table IV kernel, original and refactored. Each case
// is self-contained — its own parse, load, interpreter and meter — so cases
// can run in any order or in parallel and still produce identical records.
func goldenCases(engine interp.Engine, runs int) ([]goldenCase, error) {
	var cases []goldenCase

	loadSrc := func(src string) func() (*interp.Program, error) {
		return func() (*interp.Program, error) {
			f, err := parser.Parse("golden.java", src)
			if err != nil {
				return nil, err
			}
			return interp.Load(f)
		}
	}
	driveF := func(in *interp.Interp) error {
		if err := in.InitStatics(); err != nil {
			return err
		}
		_, err := in.CallStatic("B", "f")
		return err
	}
	addCase := func(name string, load func() (*interp.Program, error), drive func(in *interp.Interp) error) {
		cases = append(cases, goldenCase{name: name, run: func() (goldenRecord, error) {
			return fingerprint(engine, name, runs, load, drive)
		}})
	}
	for _, b := range table1Benches {
		addCase(fmt.Sprintf("table1/%v/inefficient", b.rule), loadSrc(b.slow), driveF)
		addCase(fmt.Sprintf("table1/%v/efficient", b.rule), loadSrc(b.fast), driveF)
	}

	// One Table IV kernel pair on real generated data, exercising statics,
	// objects, arrays, calls and exceptions together.
	const kernelName = "RandomForest"
	const kernelRows = 300
	proj, err := corpus.Generate(kernelName, 20200518)
	if err != nil {
		return nil, err
	}
	data := airlines.Generate(kernelRows, 20200518)
	feats, labels := kernelData(data)
	loadKernel := func(refactored bool) func() (*interp.Program, error) {
		return func() (*interp.Program, error) {
			kernel, err := kernelAST(cache.Default(), proj, kernelName)
			if err != nil {
				return nil, err
			}
			if refactored {
				refactor.Apply([]*ast.File{kernel})
			}
			return interp.Load(kernel)
		}
	}
	driveKernel := func(in *interp.Interp) error {
		if err := in.InitStatics(); err != nil {
			return err
		}
		kc := corpus.KernelClass(kernelName)
		if err := in.Bind(kc, "DATA", in.NewDoubleMatrix(feats)); err != nil {
			return err
		}
		if err := in.Bind(kc, "LABELS", in.NewIntArray(labels)); err != nil {
			return err
		}
		_, err := in.CallStatic(kc, "run", interp.IntVal(1))
		return err
	}
	addCase("table4/"+kernelName+"/original", loadKernel(false), driveKernel)
	addCase("table4/"+kernelName+"/refactored", loadKernel(true), driveKernel)
	return cases, nil
}

// goldenBattery runs the battery sequentially.
func goldenBattery(t *testing.T, engine interp.Engine, runs int) []goldenRecord {
	t.Helper()
	cases, err := goldenCases(engine, runs)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]goldenRecord, len(cases))
	for i, c := range cases {
		if recs[i], err = c.run(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
	return recs
}

// readGolden loads testdata/golden_energy.json.
func readGolden(t *testing.T) []goldenRecord {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", "golden_energy.json"))
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestGoldenEnergyDeterminism is the tentpole invariant of the interpreter:
// simulated energy is a pure function of the program and cost table,
// independent of host-side interpreter optimizations AND of the execution
// engine. The golden file was generated from the pre-optimization
// tree-walker; both the current walker and the bytecode VM must reproduce
// it bit-for-bit — any drift in op counts, joules, cycles or program output
// fails the test.
//
// Regenerate (only after an intentional cost-model or corpus change) with:
//
//	go test ./internal/tables -run GoldenEnergy -update
func TestGoldenEnergyDeterminism(t *testing.T) {
	path := filepath.Join("testdata", "golden_energy.json")
	if *updateGolden {
		got := goldenBattery(t, interp.EngineVM, 1)
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d records)", path, len(got))
		return
	}
	want := readGolden(t)
	for _, engine := range []interp.Engine{interp.EngineVM, interp.EngineAST} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) {
			compareGolden(t, want, goldenBattery(t, engine, 1))
		})
	}
}

// TestGoldenEnergyWarmExecution is the warm half of the battery: every case
// is driven twice on one interpreter instance per engine, so the VM's second
// pass runs its quickened code copies against filled inline caches. The
// cumulative two-run fingerprints of the VM and the tree-walker must agree
// bit for bit — runtime opcode patching must not move a single charge. (The
// cold half is pinned against the golden file by TestGoldenEnergyDeterminism;
// warm runs have no golden of their own because statics mutate across runs,
// so the walker itself is the reference.)
func TestGoldenEnergyWarmExecution(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is regenerated by TestGoldenEnergyDeterminism")
	}
	ast := goldenBattery(t, interp.EngineAST, 2)
	vm := goldenBattery(t, interp.EngineVM, 2)
	compareGolden(t, ast, vm)
}

// TestGoldenEnergySchedJobs runs the same battery sharded across the sched
// pool at -jobs 1, 4 and GOMAXPROCS, against the same golden file. This is
// the parallel-determinism acceptance gate: worker count must not move a
// single charge, op count or output byte.
func TestGoldenEnergySchedJobs(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is regenerated by TestGoldenEnergyDeterminism")
	}
	want := readGolden(t)
	cases, err := goldenCases(interp.EngineVM, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobsValues := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, jobs := range jobsValues {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			got, tel, err := sched.Map(context.Background(), sched.Config{Jobs: jobs, Seed: 20200518}, cases,
				func(_ sched.Task, c goldenCase) (goldenRecord, error) {
					return c.run()
				})
			if err != nil {
				t.Fatal(err)
			}
			if tel.Tasks != len(cases) {
				t.Errorf("telemetry tasks = %d, want %d", tel.Tasks, len(cases))
			}
			compareGolden(t, want, got)
		})
	}
}

// compareGolden diffs one engine's battery against the golden records.
func compareGolden(t *testing.T, want, got []goldenRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("battery size changed: golden has %d records, run produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if w.Name != g.Name {
			t.Errorf("record %d: name %q, golden %q", i, g.Name, w.Name)
			continue
		}
		if g.Output != w.Output {
			t.Errorf("%s: program output drifted", w.Name)
		}
		if g.Cycles != w.Cycles || g.Package != w.Package || g.Core != w.Core || g.DRAM != w.DRAM {
			t.Errorf("%s: energy drifted: package %v (golden %v), cycles %v (golden %v)",
				w.Name, math.Float64frombits(g.Package), math.Float64frombits(w.Package),
				math.Float64frombits(g.Cycles), math.Float64frombits(w.Cycles))
		}
		for op, n := range w.OpCounts {
			if g.OpCounts[op] != n {
				t.Errorf("%s: op %s count = %d, golden %d", w.Name, op, g.OpCounts[op], n)
			}
		}
		for op, n := range g.OpCounts {
			if _, ok := w.OpCounts[op]; !ok {
				t.Errorf("%s: new op %s charged %d times, absent from golden", w.Name, op, n)
			}
		}
	}
}
