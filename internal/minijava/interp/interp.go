package interp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"jepo/internal/energy"
	"jepo/internal/minijava/ast"
	"jepo/internal/minijava/token"
)

// ProbeHook receives the method enter/exit events the instrumenter injects
// (the JEPO.enter / JEPO.exit builtins). The profiler implements it.
type ProbeHook interface {
	Enter(method string)
	Exit(method string)
}

// Interp executes a loaded Program against an energy meter.
type Interp struct {
	prog  *Program
	meter *energy.Meter
	out   strings.Builder
	hook  ProbeHook

	maxOps int64 // 0 = unlimited
	ops    int64
	rngInt uint64 // deterministic LCG for Math.random

	// ctx, when set, lets a long run be cancelled or deadlined mid-flight.
	// ctxCheckAt is the ops value at which the context is next polled; the
	// check piggybacks on the existing op counter (no meter traffic, no extra
	// counters), so the energy accounting is bit-identical whether or not a
	// context is installed — cancellation only changes *whether* the run
	// completes, never what a completed run charges. Without a context,
	// ctxCheckAt stays at math.MaxInt64 and the poll branch never fires.
	ctx        context.Context
	ctxCheckAt int64

	engine       Engine
	staticsReady bool

	// runFast is true when the program's charge runs were bound against this
	// meter's cost table (and the metering fast path is on): OpRunCharge
	// replays the precomputed deltas instead of the charge list. The two
	// replays are bit-identical; runFast only exists so a meter with a
	// custom cost table silently gets the unbound path.
	runFast bool

	// vmTier selects the bytecode engine's optimization tier: 2 (default)
	// runs the finalized stream with block charge pre-aggregation, 1 runs
	// the raw tier-1 stream — the benchmark harness measures the split.
	// quick enables runtime quickening and inline-cache patching on
	// per-instance code copies (tier 2 only).
	vmTier int
	quick  bool

	// warm holds this instance's private copies of compiled code, created on
	// first invocation per function. Quickening patches opcodes and fills
	// inline caches in these copies only, so instances sharing a Program
	// never write shared memory — race-free by construction.
	warm []warmState

	// siteCache holds per-interpreter monomorphic inline caches, indexed by
	// the SiteIx annotations the resolver leaves on Call/Select nodes. The
	// interpreter is single-threaded by design, so no locking is needed.
	siteCache []siteState

	// framePool, argPool and stackPool are free lists for frame slot arrays,
	// argument slices and VM operand stacks; invoke-heavy programs recycle
	// instead of allocating. Stacks get their own pool: their capacities
	// (MaxStack) differ from argument-list lengths, and the pools only ever
	// inspect their top entry — mixing the two sizes caused steady-state
	// allocations whenever a small argument slice surfaced above a stack
	// request.
	framePool [][]cell
	argPool   [][]Value
	stackPool [][]Value
}

// siteState is one monomorphic inline cache entry: the last dynamic class
// seen at the site together with the resolved method (call sites) or field
// slot index (select sites). A site is only ever one of the two.
type siteState struct {
	class *classInfo
	m     *ast.Method
	ix    int32
}

// Option configures an interpreter.
type Option func(*Interp)

// WithHook installs a probe hook for JEPO.enter/JEPO.exit.
func WithHook(h ProbeHook) Option { return func(in *Interp) { in.hook = h } }

// WithMaxOps bounds the number of interpreted nodes, turning runaway programs
// into an error instead of a hang.
func WithMaxOps(n int64) Option { return func(in *Interp) { in.maxOps = n } }

// ctxCheckInterval is how many budget-counted ops run between context polls.
// Small enough that cancellation lands within microseconds of real work,
// large enough that the poll is noise against the dispatch loop.
const ctxCheckInterval = 16384

// WithContext makes the run cancellable: the interpreter polls ctx every
// ctxCheckInterval budget-counted ops (on the same counter the op budget
// uses) and aborts with ctx.Err() once it is done. A nil or Background
// context costs one always-false comparison per op-batch and nothing else.
func WithContext(ctx context.Context) Option {
	return func(in *Interp) {
		if ctx == nil || ctx.Done() == nil {
			return
		}
		in.ctx = ctx
		in.ctxCheckAt = ctxCheckInterval
	}
}

// WithVMTier selects the bytecode engine's optimization tier: 1 is the
// generic-dispatch baseline (no block charge aggregation, no quickening),
// 2 (the default) is the full tier. Both tiers charge identical energy bits;
// the split exists so the benchmark harness can attribute the speedup.
func WithVMTier(t int) Option {
	return func(in *Interp) {
		if t <= 1 {
			in.vmTier, in.quick = 1, false
		} else {
			in.vmTier = 2
		}
	}
}

// WithQuickening toggles runtime quickening and inline-cache patching within
// tier 2 — the benchmark harness turns it off to measure the block
// aggregation contribution alone. It has no effect on tier 1.
func WithQuickening(on bool) Option {
	return func(in *Interp) {
		if in.vmTier >= 2 {
			in.quick = on
		}
	}
}

// New builds an interpreter for prog charging energy to meter.
func New(prog *Program, meter *energy.Meter, opts ...Option) *Interp {
	in := &Interp{
		prog:       prog,
		meter:      meter,
		rngInt:     0x9E3779B97F4A7C15,
		vmTier:     2,
		quick:      true,
		ctxCheckAt: math.MaxInt64,
		siteCache:  make([]siteState, len(prog.sites)),
		runFast:    meter.FastPath() && prog.costsBound && meter.Costs() == prog.boundCosts,
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Output returns everything the program printed via System.out.
func (in *Interp) Output() string { return in.out.String() }

// Meter exposes the meter the interpreter charges.
func (in *Interp) Meter() *energy.Meter { return in.meter }

// Ops reports the number of budget-counted steps executed so far. Both
// engines account the same step per AST node (the VM folds step-only
// prefixes into Instr.Steps), so the count is engine-independent — the
// differential fuzz pins this.
func (in *Interp) Ops() int64 { return in.ops }

// --- error plumbing ---

// javaPanic carries an in-flight mini-Java exception.
type javaPanic struct{ t *Throwable }

// bugPanic carries an interpreter-level error (type mismatch, unknown name).
type bugPanic struct{ msg string }

// cancelPanic unwinds a run whose context was cancelled or deadlined; the
// API boundary converts it back into the context's error.
type cancelPanic struct{ err error }

func (in *Interp) bugf(pos token.Pos, format string, args ...any) {
	where := ""
	if pos.Valid() {
		where = pos.String() + ": "
	}
	panic(bugPanic{where + fmt.Sprintf(format, args...)})
}

func (in *Interp) throw(class, msg string) {
	in.meter.Step(energy.OpThrow, 1)
	panic(javaPanic{&Throwable{Class: class, Msg: msg}})
}

// UncaughtError is returned when the program lets an exception escape.
type UncaughtError struct{ T *Throwable }

func (e *UncaughtError) Error() string {
	return "uncaught exception: " + (&Value{K: KThrow, R: e.T}).JavaString()
}

// run invokes f converting panics into errors at the API boundary.
func (in *Interp) run(f func() Value) (v Value, err error) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case javaPanic:
			err = &UncaughtError{T: r.t}
		case bugPanic:
			err = fmt.Errorf("interp: %s", r.msg)
		case cancelPanic:
			err = r.err
		default:
			panic(r)
		}
	}()
	if err := in.InitStatics(); err != nil {
		return Value{}, err
	}
	return f(), nil
}

// --- public entry points ---

// InitStatics runs every static field initializer once, in load order.
func (in *Interp) InitStatics() (err error) {
	if in.staticsReady {
		return nil
	}
	defer func() {
		switch r := recover().(type) {
		case nil:
		case javaPanic:
			err = &UncaughtError{T: r.t}
		case bugPanic:
			err = fmt.Errorf("interp: %s", r.msg)
		case cancelPanic:
			err = r.err
		default:
			panic(r)
		}
	}()
	in.staticsReady = true
	for _, name := range in.prog.order {
		ci := in.prog.classes[name]
		for _, fname := range ci.statOrd {
			slot := ci.statics[fname]
			slot.Addr = in.meter.Alloc(8)
			if slot.Init != nil {
				fr := frame{class: ci}
				slot.V = in.coerceTo(in.evalInit(&fr, slot.Init, slot.Type), slot.Type, slot.Init.NodePos())
			} else {
				slot.V = zeroValue(slot.Type)
			}
		}
	}
	return nil
}

// RunMain locates the main method of the named class (or the unique main in
// the program when mainClass is "") and executes it.
func (in *Interp) RunMain(mainClass string) error {
	if mainClass == "" {
		var candidates []string
		for _, name := range in.prog.order {
			if in.prog.classes[name].findMethod("main", 1) != nil {
				candidates = append(candidates, name)
			}
		}
		switch len(candidates) {
		case 1:
			mainClass = candidates[0]
		case 0:
			return fmt.Errorf("interp: no class with a main method")
		default:
			return fmt.Errorf("interp: multiple main classes: %v (choose one)", candidates)
		}
	}
	ci, ok := in.prog.classes[mainClass]
	if !ok {
		return fmt.Errorf("interp: unknown main class %s", mainClass)
	}
	m := ci.findMethod("main", 1)
	if m == nil {
		return fmt.Errorf("interp: class %s has no main(String[]) method", mainClass)
	}
	args := in.newArray(ast.Type{Kind: ast.ClassType, Name: "String"}, []int{0})
	_, err := in.run(func() Value {
		return in.invoke(ci, nil, m, []Value{args})
	})
	return err
}

// CallStatic invokes a static method with the given values and returns its
// result. It is the harness entry point for kernels.
func (in *Interp) CallStatic(class, method string, args ...Value) (Value, error) {
	ci, ok := in.prog.classes[class]
	if !ok {
		return Value{}, fmt.Errorf("interp: unknown class %s", class)
	}
	m := ci.findMethod(method, len(args))
	if m == nil {
		return Value{}, fmt.Errorf("interp: no method %s.%s/%d", class, method, len(args))
	}
	return in.run(func() Value { return in.invoke(ci, nil, m, args) })
}

// Bind overwrites a static field with a host-provided value, coercing it to
// the field's declared type (binding an int into a double slot stores 1.0,
// not a raw int bit pattern). The coercion is host-side bookkeeping and
// charges nothing to the meter. Bind is how experiment harnesses inject
// datasets without parsing gigantic literals.
func (in *Interp) Bind(class, field string, v Value) error {
	if err := in.InitStatics(); err != nil {
		return err
	}
	ci, ok := in.prog.classes[class]
	if !ok {
		return fmt.Errorf("interp: unknown class %s", class)
	}
	slot := ci.findStatic(field)
	if slot == nil {
		return fmt.Errorf("interp: class %s has no static field %s", class, field)
	}
	cv, err := hostCoerce(v, slot.Type)
	if err != nil {
		return fmt.Errorf("interp: bind %s.%s: %w", class, field, err)
	}
	slot.V = cv
	return nil
}

// hostCoerce converts a host-provided value to a declared type without
// touching the meter (unlike coerceTo, which models the program's own
// conversions and charges narrowing/boxing costs).
func hostCoerce(v Value, t ast.Type) (Value, error) {
	if t.Dims > 0 {
		if v.K == KArr || v.K == KNull {
			return v, nil
		}
		return Value{}, fmt.Errorf("cannot bind %v to array type %s", v.K, t)
	}
	target := kindOfType(t)
	if v.K == target {
		return v, nil
	}
	switch target {
	case KInt, KLong, KShort, KByte, KChar:
		if !v.K.IsNumeric() {
			return Value{}, fmt.Errorf("cannot bind %v to %s", v.K, t)
		}
		switch target {
		case KInt:
			return IntVal(v.AsI64()), nil
		case KLong:
			return LongVal(v.AsI64()), nil
		case KShort:
			return ShortVal(v.AsI64()), nil
		case KByte:
			return ByteVal(v.AsI64()), nil
		default:
			return CharVal(v.AsI64()), nil
		}
	case KFloat, KDouble:
		if !v.K.IsNumeric() {
			return Value{}, fmt.Errorf("cannot bind %v to %s", v.K, t)
		}
		if target == KFloat {
			return FloatVal(v.AsF64()), nil
		}
		return DoubleVal(v.AsF64()), nil
	case KBool, KString, KSB, KBox:
		if v.K == KNull {
			return v, nil
		}
	case KRef:
		switch v.K {
		case KRef, KNull, KThrow, KString, KArr, KSB, KBox:
			return v, nil
		}
	}
	return Value{}, fmt.Errorf("cannot bind %v to %s", v.K, t)
}

// NewIntArray, NewDoubleArray and friends build host arrays for Bind.
func (in *Interp) NewIntArray(data []int64) Value {
	a := in.newArrayRaw(ast.Type{Kind: ast.Int}, len(data))
	copy(a.R.(*Array).I, data)
	return a
}

// NewDoubleArray builds a double[] from host data.
func (in *Interp) NewDoubleArray(data []float64) Value {
	a := in.newArrayRaw(ast.Type{Kind: ast.Double}, len(data))
	copy(a.R.(*Array).D, data)
	return a
}

// NewDoubleMatrix builds a double[][] from host data.
func (in *Interp) NewDoubleMatrix(data [][]float64) Value {
	outer := in.newArrayRaw(ast.Type{Kind: ast.Double, Dims: 1}, len(data))
	oa := outer.R.(*Array)
	for i, row := range data {
		oa.R[i] = in.NewDoubleArray(row)
	}
	return outer
}

// NewStringArray builds a String[] from host data.
func (in *Interp) NewStringArray(data []string) Value {
	a := in.newArrayRaw(ast.Type{Kind: ast.ClassType, Name: "String"}, len(data))
	ar := a.R.(*Array)
	for i, s := range data {
		ar.R[i] = StringVal(s)
	}
	return a
}

// --- frames ---

// cell is one frame slot. live distinguishes a declared local from a slot
// whose declaration statement has not executed yet (the dialect declares at
// execution time, so on a loop's first iteration an identifier can run
// before its declaration and must fall back to field/static lookup).
type cell struct {
	t    ast.Type
	v    Value
	k    Kind // kindOfType(t), precomputed so stores can skip coerceTo on identity
	live bool
}

// frame is one activation record. locals is a flat slot array sized by the
// resolver's Method.NSlots; field-initializer and static-initializer frames
// have no slots.
type frame struct {
	class  *classInfo
	this   *Object
	locals []cell
}

// grabLocals returns a zeroed slot array of length n, recycling from the
// frame free list when possible.
func (in *Interp) grabLocals(n int) []cell {
	if k := len(in.framePool) - 1; k >= 0 && cap(in.framePool[k]) >= n {
		s := in.framePool[k][:n]
		in.framePool = in.framePool[:k]
		for i := range s {
			s[i] = cell{}
		}
		return s
	}
	if n == 0 {
		return nil
	}
	c := n
	if c < 8 {
		c = 8
	}
	return make([]cell, n, c)
}

// releaseLocals returns a slot array to the free list. Callers release via
// defer so mini-Java exception unwinding keeps the pool balanced.
func (in *Interp) releaseLocals(s []cell) {
	if cap(s) > 0 {
		in.framePool = append(in.framePool, s[:0])
	}
}

// grabArgs returns an argument slice of length n from the free list. Every
// element is overwritten by the caller before use.
func (in *Interp) grabArgs(n int) []Value {
	if n == 0 {
		return nil
	}
	if k := len(in.argPool) - 1; k >= 0 && cap(in.argPool[k]) >= n {
		s := in.argPool[k][:n]
		in.argPool = in.argPool[:k]
		return s
	}
	c := n
	if c < 4 {
		c = 4
	}
	return make([]Value, n, c)
}

// releaseArgs returns an argument slice to the free list once the callee has
// copied the values out. Slices abandoned by exception unwinding are simply
// collected by the GC.
func (in *Interp) releaseArgs(s []Value) {
	if cap(s) > 0 {
		in.argPool = append(in.argPool, s[:0])
	}
}

// grabStack returns a VM operand stack of length n from its own free list,
// kept separate from argPool so the two size populations never evict each
// other (the pools only consult their top entry).
func (in *Interp) grabStack(n int) []Value {
	if n == 0 {
		return nil
	}
	if k := len(in.stackPool) - 1; k >= 0 && cap(in.stackPool[k]) >= n {
		s := in.stackPool[k][:n]
		in.stackPool = in.stackPool[:k]
		return s
	}
	c := n
	if c < 8 {
		c = 8
	}
	return make([]Value, n, c)
}

func (in *Interp) releaseStack(s []Value) {
	if cap(s) > 0 {
		in.stackPool = append(in.stackPool, s[:0])
	}
}

// --- statement execution ---

type ctrlKind int

const (
	ctrlNormal ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type ctrl struct {
	kind ctrlKind
	v    Value
}

var normal = ctrl{}

// step counts one interpreted node against the op budget. The panic lives in
// a separate function so step stays within the inlining budget; it is charged
// on every AST node. The context poll rides on the same counter: without a
// context ctxCheckAt is MaxInt64 and the branch never fires.
func (in *Interp) step() {
	in.ops++
	if in.maxOps > 0 && in.ops > in.maxOps {
		in.opBudgetExceeded()
	}
	if in.ops >= in.ctxCheckAt {
		in.ctxCheckpoint()
	}
}

//go:noinline
func (in *Interp) opBudgetExceeded() {
	panic(bugPanic{fmt.Sprintf("op budget of %d exceeded (likely an infinite loop)", in.maxOps)})
}

// ctxCheckpoint polls the installed context and re-arms the next poll point.
// It charges nothing to the meter — cancellation never perturbs the energy
// accounting of runs that complete.
//
//go:noinline
func (in *Interp) ctxCheckpoint() {
	in.ctxCheckAt = in.ops + ctxCheckInterval
	if err := in.ctx.Err(); err != nil {
		panic(cancelPanic{err})
	}
}

func (in *Interp) exec(fr *frame, s ast.Stmt) ctrl {
	in.step()
	// Cases ordered by dynamic frequency; expression statements and branches
	// dominate loop bodies.
	switch n := s.(type) {
	case *ast.ExprStmt:
		in.evalStmtExpr(fr, n.X)
		return normal
	case *ast.If:
		in.meter.Step(energy.OpBranch, 1)
		if in.evalCond(fr, n.Cond) {
			return in.exec(fr, n.Then)
		}
		if n.Else != nil {
			return in.exec(fr, n.Else)
		}
		return normal
	case *ast.Block:
		for _, st := range n.Stmts {
			if c := in.exec(fr, st); c.kind != ctrlNormal {
				return c
			}
		}
		return normal
	case *ast.Return:
		if n.X == nil {
			return ctrl{kind: ctrlReturn}
		}
		return ctrl{kind: ctrlReturn, v: in.operand(fr, n.X)}
	case *ast.LocalVar:
		k := kindOfType(n.Type)
		var v Value
		if n.Init != nil {
			v = in.evalInit(fr, n.Init, n.Type)
			if v.K != k {
				v = in.coerceTo(v, n.Type, n.Pos)
			}
		} else {
			v = zeroValue(n.Type)
		}
		if s := int(n.Slot) - 1; s >= 0 && s < len(fr.locals) {
			fr.locals[s] = cell{t: n.Type, k: k, v: v, live: true}
		} else {
			in.bugf(n.Pos, "unresolved local variable %s", n.Name)
		}
		in.meter.Step(energy.OpLocal, 1)
		return normal
	case *ast.While:
		for {
			in.meter.Step(energy.OpBranch, 1)
			if !in.evalCond(fr, n.Cond) {
				return normal
			}
			c := in.exec(fr, n.Body)
			switch c.kind {
			case ctrlBreak:
				return normal
			case ctrlReturn:
				return c
			}
		}
	case *ast.DoWhile:
		for {
			c := in.exec(fr, n.Body)
			switch c.kind {
			case ctrlBreak:
				return normal
			case ctrlReturn:
				return c
			}
			in.meter.Step(energy.OpBranch, 1)
			if !in.evalCond(fr, n.Cond) {
				return normal
			}
		}
	case *ast.Switch:
		return in.execSwitch(fr, n)
	case *ast.For:
		if n.Init != nil {
			if c := in.exec(fr, n.Init); c.kind != ctrlNormal {
				return c
			}
		}
		for {
			if n.Cond != nil {
				in.meter.Step(energy.OpBranch, 1)
				if !in.evalCond(fr, n.Cond) {
					return normal
				}
			}
			c := in.exec(fr, n.Body)
			switch c.kind {
			case ctrlBreak:
				return normal
			case ctrlReturn:
				return c
			}
			for _, post := range n.Post {
				in.evalStmtExpr(fr, post)
			}
		}
	case *ast.Break:
		return ctrl{kind: ctrlBreak}
	case *ast.Continue:
		return ctrl{kind: ctrlContinue}
	case *ast.Empty:
		return normal
	case *ast.Throw:
		v := in.eval(fr, n.X)
		if v.K != KThrow {
			in.bugf(n.Pos, "throw of non-throwable %v", v.K)
		}
		in.meter.Step(energy.OpThrow, 1)
		panic(javaPanic{v.R.(*Throwable)})
	case *ast.Try:
		return in.execTry(fr, n)
	}
	in.bugf(s.NodePos(), "unsupported statement %T", s)
	return normal
}

// execSwitch implements switch with Java fall-through: execution starts at
// the first matching arm (or default) and continues into following arms
// until a break. Each candidate comparison charges a branch plus the
// comparison itself, modelling a lookupswitch.
func (in *Interp) execSwitch(fr *frame, sw *ast.Switch) ctrl {
	tag := in.eval(fr, sw.Tag)
	if tag.K == KBox {
		tag = in.unbox(tag, sw.Pos)
	}
	start := -1
	defaultArm := -1
	for ci, arm := range sw.Cases {
		if len(arm.Values) == 0 {
			defaultArm = ci
			continue
		}
		for _, vexpr := range arm.Values {
			v := in.eval(fr, vexpr)
			in.meter.Step(energy.OpBranch, 1)
			if in.switchMatches(tag, v, sw.Pos) {
				start = ci
				break
			}
		}
		if start >= 0 {
			break
		}
	}
	if start < 0 {
		start = defaultArm
	}
	if start < 0 {
		return normal
	}
	for ci := start; ci < len(sw.Cases); ci++ {
		for _, st := range sw.Cases[ci].Stmts {
			c := in.exec(fr, st)
			switch c.kind {
			case ctrlBreak:
				return normal
			case ctrlNormal:
			default:
				return c
			}
		}
	}
	return normal
}

// switchMatches compares a switch tag to a case value: numeric equality for
// integral tags, String.equals semantics for string tags.
func (in *Interp) switchMatches(tag, v Value, pos token.Pos) bool {
	if tag.K == KString {
		if v.K != KString {
			in.bugf(pos, "switch over String with non-String case")
		}
		in.meter.Step(energy.OpStrEqualsChar, min(len(tag.Str()), len(v.Str())))
		return tag.Str() == v.Str()
	}
	if !tag.K.IsIntegral() || !v.K.IsIntegral() {
		in.bugf(pos, "switch tag must be integral or String, got %v", tag.K)
	}
	in.meter.Step(energy.OpArithInt, 1)
	return tag.I == v.I
}

// execTry implements try/catch/finally with Java's ordering: the finally
// block always runs, and a non-normal completion inside it replaces the
// pending control flow or exception.
func (in *Interp) execTry(fr *frame, t *ast.Try) ctrl {
	in.meter.Step(energy.OpTryEnter, 1)
	c, thrown := in.runProtected(fr, t.Block)
	if thrown != nil {
		handled := false
		for _, cat := range t.Catches {
			if thrown.instanceOf(cat.Type) {
				in.meter.Step(energy.OpCatch, 1)
				if s := int(cat.Slot) - 1; s >= 0 && s < len(fr.locals) {
					ct := ast.Type{Kind: ast.ClassType, Name: cat.Type}
					fr.locals[s] = cell{
						t:    ct,
						k:    kindOfType(ct),
						v:    Value{K: KThrow, R: thrown},
						live: true,
					}
				} else {
					in.bugf(cat.Pos, "unresolved catch variable %s", cat.Name)
				}
				c, thrown = in.runProtected(fr, cat.Block)
				handled = true
				break
			}
		}
		_ = handled
	}
	if t.Finally != nil {
		if fc := in.exec(fr, t.Finally); fc.kind != ctrlNormal {
			return fc // finally's control flow wins, discarding the exception
		}
	}
	if thrown != nil {
		panic(javaPanic{thrown})
	}
	return c
}

// runProtected executes a block, capturing a thrown mini-Java exception.
func (in *Interp) runProtected(fr *frame, blk *ast.Block) (c ctrl, thrown *Throwable) {
	defer func() {
		if r := recover(); r != nil {
			if jp, ok := r.(javaPanic); ok {
				thrown = jp.t
				return
			}
			panic(r)
		}
	}()
	return in.exec(fr, blk), nil
}

// evalCond evaluates a boolean expression.
func (in *Interp) evalCond(fr *frame, e ast.Expr) bool {
	v := in.operand(fr, e)
	if v.K == KBox {
		v = in.unbox(v, e.NodePos())
	}
	if v.K != KBool {
		in.bugf(e.NodePos(), "condition is %v, not boolean", v.K)
	}
	return v.I != 0
}

// --- method invocation ---

// invoke runs a method with already-evaluated arguments. The frame's slot
// array comes from the free list and is returned on the way out, including
// when a mini-Java exception unwinds through the call.
func (in *Interp) invoke(ci *classInfo, this *Object, m *ast.Method, args []Value) Value {
	if in.engine == EngineVM {
		if ix := int(m.CIx) - 1; uint(ix) < uint(len(in.prog.funcs)) {
			if cf := &in.prog.funcs[ix]; cf.fn != nil {
				return in.invokeVM(ci, this, m, cf, args)
			}
		}
	}
	in.meter.Step(energy.OpCall, 1)
	nslots := int(m.NSlots)
	if nslots < len(m.Params) {
		nslots = len(m.Params) // unresolved method; should not happen
	}
	fr := frame{class: ci, this: this, locals: in.grabLocals(nslots)}
	defer in.releaseLocals(fr.locals)
	for i := range m.Params {
		p := &m.Params[i]
		pk := kindOfType(p.Type)
		av := args[i]
		if av.K != pk {
			av = in.coerceTo(av, p.Type, m.Pos)
		}
		fr.locals[i] = cell{t: p.Type, k: pk, v: av, live: true}
	}
	c := in.exec(&fr, m.Body)
	if c.kind == ctrlReturn {
		if m.Ret.Kind != ast.Void || m.Ret.Dims > 0 {
			return in.coerceTo(c.v, m.Ret, m.Pos)
		}
		return Value{K: KVoid}
	}
	return Value{K: KVoid}
}

// construct builds a new instance of a user class and runs the given
// constructor (nil means the implicit zero-argument one).
func (in *Interp) construct(ci *classInfo, ctor *ast.Method, args []Value, pos token.Pos) Value {
	in.meter.Step(energy.OpAllocObject, 1)
	obj := &Object{
		Class: ci,
		Slots: make([]Value, len(ci.fields)),
		Base:  in.meter.Alloc(16 + 8*len(ci.fields)),
	}
	// Zero-init then run declared initializers top-down.
	for i, f := range ci.fields {
		obj.Slots[i] = zeroValue(f.Type)
	}
	initFr := frame{class: ci, this: obj}
	for i, f := range ci.fields {
		if f.Init != nil {
			obj.Slots[i] = in.coerceTo(in.evalInit(&initFr, f.Init, f.Type), f.Type, pos)
			in.meter.FieldAccess(obj.Base + 16 + uint64(8*i))
		}
	}
	if ctor == nil {
		if len(args) != 0 {
			in.bugf(pos, "no constructor %s/%d", ci.Name, len(args))
		}
		return Value{K: KRef, R: obj}
	}
	in.invoke(ci, obj, ctor, args)
	return Value{K: KRef, R: obj}
}

// --- expression evaluation ---

// evalInit evaluates an initializer, using the declared type to interpret
// array literals.
func (in *Interp) evalInit(fr *frame, e ast.Expr, t ast.Type) Value {
	if lit, ok := e.(*ast.ArrayLit); ok {
		return in.buildArrayLit(fr, lit, t)
	}
	return in.operand(fr, e)
}

func (in *Interp) buildArrayLit(fr *frame, lit *ast.ArrayLit, t ast.Type) Value {
	if t.Dims == 0 {
		in.bugf(lit.Pos, "array literal for non-array type %s", t)
	}
	v := in.newArrayRaw(t.Elem(), len(lit.Elems))
	arr := v.R.(*Array)
	elemT := t.Elem()
	for i, el := range lit.Elems {
		ev := in.evalInit(fr, el, elemT)
		arr.set(i, in.coerceTo(ev, elemT, lit.Pos))
		in.meter.Step(energy.OpArrayElem, 1)
		in.meter.Access(arr.addr(i), arr.ES)
	}
	return v
}

func (in *Interp) eval(fr *frame, e ast.Expr) Value {
	in.step()
	// Cases ordered by dynamic frequency: idents, literals and arithmetic
	// dominate every workload in the benchmark suite.
	switch n := e.(type) {
	case *ast.Ident:
		return in.evalIdent(fr, n)
	case *ast.Literal:
		return in.evalLiteral(n)
	case *ast.Binary:
		return in.evalBinary(fr, n)
	case *ast.Assign:
		return in.evalAssign(fr, n)
	case *ast.Select:
		return in.evalSelect(fr, n)
	case *ast.Call:
		return in.evalCall(fr, n)
	case *ast.Index:
		arr, idx := in.evalIndexOperands(fr, n)
		in.meter.ArrayAccess(arr.addr(idx), arr.ES)
		return arr.get(idx)
	case *ast.Unary:
		return in.evalUnary(fr, n)
	case *ast.This:
		if fr.this == nil {
			in.bugf(n.Pos, "this in static context")
		}
		return Value{K: KRef, R: fr.this}
	case *ast.New:
		return in.evalNew(fr, n)
	case *ast.NewArray:
		return in.evalNewArray(fr, n)
	case *ast.ArrayLit:
		in.bugf(n.Pos, "array literal outside an initializer")
	case *ast.Ternary:
		in.meter.Step(energy.OpBranch, 1)
		in.meter.Step(energy.OpTernary, 1)
		if in.evalCond(fr, n.Cond) {
			return in.eval(fr, n.Then)
		}
		return in.eval(fr, n.Else)
	case *ast.Cast:
		return in.evalCast(fr, n)
	case *ast.InstanceOf:
		v := in.eval(fr, n.X)
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(in.valueInstanceOf(v, n.Name))
	}
	in.bugf(e.NodePos(), "unsupported expression %T", e)
	return Value{}
}

func (in *Interp) evalLiteral(n *ast.Literal) Value {
	switch n.Kind {
	case ast.LitInt:
		in.meter.Step(energy.OpLocal, 1)
		return IntVal(n.I)
	case ast.LitLong:
		in.meter.Step(energy.OpLocal, 1)
		return LongVal(n.I)
	case ast.LitFloat:
		in.chargeConst(n.Sci)
		return FloatVal(n.D)
	case ast.LitDouble:
		in.chargeConst(n.Sci)
		return DoubleVal(n.D)
	case ast.LitChar:
		in.meter.Step(energy.OpLocal, 1)
		return CharVal(n.I)
	case ast.LitString:
		in.meter.Step(energy.OpLocal, 1)
		return StringVal(n.S)
	case ast.LitBool:
		in.meter.Step(energy.OpLocal, 1)
		return BoolVal(n.I != 0)
	case ast.LitNull:
		in.meter.Step(energy.OpLocal, 1)
		return NullVal()
	}
	return Value{}
}

func (in *Interp) chargeConst(sci bool) {
	if sci {
		in.meter.Step(energy.OpConstSci, 1)
	} else {
		in.meter.Step(energy.OpConstDecimal, 1)
	}
}

// evalIdent resolves, in order: local, instance field, static field of the
// enclosing class, then a class name. The resolver's annotations let the
// common cases skip the map lookups; anything it could not pin down falls
// through to evalIdentSlow, the original dynamic ladder.
func (in *Interp) evalIdent(fr *frame, n *ast.Ident) Value {
	if s := int(n.RSlot) - 1; s >= 0 && s < len(fr.locals) {
		if c := &fr.locals[s]; c.live {
			in.meter.Step(energy.OpLocal, 1)
			return c.v
		}
	}
	switch n.RKind {
	case ast.ResField:
		if this := fr.this; this != nil {
			if ix := int(n.RIx); ix < len(this.Slots) {
				in.meter.FieldAccess(this.Base + 16 + uint64(8*ix))
				return this.Slots[ix]
			}
		}
	case ast.ResStaticRef:
		if ix := int(n.RIx); ix < len(in.prog.statRefs) {
			slot := in.prog.statRefs[ix]
			in.meter.StaticAccess(slot.Addr)
			return slot.V
		}
	case ast.ResStatic:
		if fr.class != nil {
			if slot := fr.class.flatStatics[n.Name]; slot != nil {
				in.meter.StaticAccess(slot.Addr)
				return slot.V
			}
		}
	case ast.ResClass:
		return Value{K: KClassRef, R: n.Name}
	}
	return in.evalIdentSlow(fr, n)
}

// evalIdentSlow is the fully dynamic resolution ladder for identifiers the
// resolver left unresolved (and the error reporter for broken annotations).
// Locals need no re-check here: a name is only ever a local if the resolver
// assigned it a slot, which evalIdent already consulted.
func (in *Interp) evalIdentSlow(fr *frame, n *ast.Ident) Value {
	if fr.this != nil {
		if ix, ok := fr.this.Class.fieldIx[n.Name]; ok {
			in.meter.FieldAccess(fr.this.Base + 16 + uint64(8*ix))
			return fr.this.Slots[ix]
		}
	}
	if fr.class != nil {
		if slot := fr.class.findStatic(n.Name); slot != nil {
			in.meter.StaticAccess(slot.Addr)
			return slot.V
		}
	}
	if _, ok := in.prog.classes[n.Name]; ok || isBuiltinClass(n.Name) {
		return Value{K: KClassRef, R: n.Name}
	}
	in.bugf(n.Pos, "unknown identifier %s", n.Name)
	return Value{}
}

func (in *Interp) evalSelect(fr *frame, n *ast.Select) Value {
	return in.selectFrom(in.operand(fr, n.X), n)
}

// selectFrom reads field n.Name from an already-evaluated receiver — shared
// by the tree-walk above and the VM's OpLoadSelect.
func (in *Interp) selectFrom(x Value, n *ast.Select) Value {
	switch x.K {
	case KClassRef:
		cls := x.R.(string)
		if ix := int(n.SiteIx) - 1; ix >= 0 && ix < len(in.prog.sites) {
			switch ps := &in.prog.sites[ix]; ps.kind {
			case siteStaticSel:
				if ps.cls == cls {
					in.meter.StaticAccess(ps.slot.Addr)
					return ps.slot.V
				}
			case siteBuiltinConstSel:
				if ps.cls == cls {
					in.meter.Step(energy.OpStatic, 1)
					return ps.v
				}
			}
		}
		if cls == "System" && n.Name == "out" {
			return Value{K: KClassRef, R: "System.out"}
		}
		if ci, ok := in.prog.classes[cls]; ok {
			if slot := ci.findStatic(n.Name); slot != nil {
				in.meter.StaticAccess(slot.Addr)
				return slot.V
			}
		}
		if v, ok := builtinStaticField(cls, n.Name); ok {
			in.meter.Step(energy.OpStatic, 1)
			return v
		}
		in.bugf(n.Pos, "unknown static field %s.%s", cls, n.Name)
	case KArr:
		if n.Name == "length" {
			in.meter.Step(energy.OpField, 1)
			return IntVal(int64(x.R.(*Array).Len()))
		}
		in.bugf(n.Pos, "arrays have no field %s", n.Name)
	case KRef:
		obj := x.R.(*Object)
		var ix int
		if si := int(n.SiteIx) - 1; si >= 0 && si < len(in.siteCache) {
			sc := &in.siteCache[si]
			if sc.class != obj.Class {
				fix, ok := obj.Class.fieldIx[n.Name]
				if !ok {
					in.bugf(n.Pos, "class %s has no field %s", obj.Class.Name, n.Name)
				}
				sc.class, sc.ix = obj.Class, int32(fix)
			}
			ix = int(sc.ix)
		} else {
			fix, ok := obj.Class.fieldIx[n.Name]
			if !ok {
				in.bugf(n.Pos, "class %s has no field %s", obj.Class.Name, n.Name)
			}
			ix = fix
		}
		in.meter.FieldAccess(obj.Base + 16 + uint64(8*ix))
		return obj.Slots[ix]
	case KNull:
		in.throw("NullPointerException", "field "+n.Name+" on null")
	}
	in.bugf(n.Pos, "cannot select %s from %v", n.Name, x.K)
	return Value{}
}

func (in *Interp) evalIndexOperands(fr *frame, n *ast.Index) (*Array, int) {
	xv := in.operand(fr, n.X)
	iv := in.operand(fr, n.I)
	return in.indexCheck(xv, iv, n)
}

// indexCheck validates an already-evaluated array/index pair (null check,
// unbox, integral check, bounds) — shared by the tree-walk and the VM.
func (in *Interp) indexCheck(xv, iv Value, n *ast.Index) (*Array, int) {
	if xv.K == KNull {
		in.throw("NullPointerException", "index on null array")
	}
	if xv.K != KArr {
		in.bugf(n.Pos, "indexing non-array %v", xv.K)
	}
	if iv.K == KBox {
		iv = in.unbox(iv, n.Pos)
	}
	if !iv.K.IsIntegral() {
		in.bugf(n.Pos, "array index is %v, not integral", iv.K)
	}
	arr := xv.R.(*Array)
	idx := int(iv.I)
	if idx < 0 || idx >= arr.Len() {
		in.throw("ArrayIndexOutOfBoundsException",
			fmt.Sprintf("Index %d out of bounds for length %d", idx, arr.Len()))
	}
	return arr, idx
}

func (in *Interp) evalNew(fr *frame, n *ast.New) Value {
	return in.newDispatch(n, in.evalArgs(fr, n.Args))
}

// newDispatch constructs n with already-evaluated arguments — shared by the
// tree-walk and the VM's OpNew.
func (in *Interp) newDispatch(n *ast.New, args []Value) Value {
	if ix := int(n.SiteIx) - 1; ix >= 0 && ix < len(in.prog.sites) {
		switch ps := &in.prog.sites[ix]; ps.kind {
		case siteNewUser:
			v := in.construct(ps.ci, ps.m, args, n.Pos)
			in.releaseArgs(args)
			return v
		case siteNewBuiltin:
			v := in.constructBuiltin(n.Name, args, n.Pos)
			in.releaseArgs(args)
			return v
		}
	}
	if ci, ok := in.prog.classes[n.Name]; ok {
		v := in.construct(ci, ci.findCtor(len(args)), args, n.Pos)
		in.releaseArgs(args)
		return v
	}
	v := in.constructBuiltin(n.Name, args, n.Pos)
	in.releaseArgs(args)
	return v
}

func (in *Interp) evalNewArray(fr *frame, n *ast.NewArray) Value {
	lens := make([]int, len(n.Lens))
	for i, le := range n.Lens {
		lv := in.eval(fr, le)
		if lv.K == KBox {
			lv = in.unbox(lv, n.Pos)
		}
		if !lv.K.IsIntegral() {
			in.bugf(n.Pos, "array length is %v, not integral", lv.K)
		}
		if lv.I < 0 {
			in.throw("NegativeArraySizeException", fmt.Sprintf("%d", lv.I))
		}
		lens[i] = int(lv.I)
	}
	return in.newArray(n.Elem, lens)
}

// newArray allocates a possibly multi-dimensional array. elem is the base
// element type (its Dims are extra unsized dimensions).
func (in *Interp) newArray(elem ast.Type, lens []int) Value {
	t := elem
	t.Dims += len(lens) - 1
	v := in.newArrayRaw(t, lens[0])
	if len(lens) > 1 {
		arr := v.R.(*Array)
		for i := 0; i < lens[0]; i++ {
			arr.R[i] = in.newArray(elem, lens[1:])
		}
	}
	return v
}

// newArrayRaw allocates a 1-D array whose elements have type elemT.
func (in *Interp) newArrayRaw(elemT ast.Type, n int) Value {
	k := kindOfType(elemT)
	es := elemSize(k)
	arr := &Array{Kind: k, Elem: elemT, ES: es, Base: in.meter.Alloc(16 + n*es)}
	switch k {
	case KInt, KLong, KShort, KByte, KChar, KBool:
		arr.I = make([]int64, n)
	case KFloat, KDouble:
		arr.D = make([]float64, n)
	default:
		arr.R = make([]Value, n)
		for i := range arr.R {
			arr.R[i] = NullVal()
		}
	}
	in.meter.Step(energy.OpAllocArrayElem, n)
	return Value{K: KArr, R: arr}
}

func (in *Interp) evalUnary(fr *frame, n *ast.Unary) Value {
	switch n.Op {
	case token.Minus:
		v := in.operand(fr, n.X)
		if v.K == KBox {
			v = in.unbox(v, n.Pos)
		}
		in.chargeArith(v.K, token.Minus)
		switch v.K {
		case KFloat:
			return FloatVal(-v.D)
		case KDouble:
			return DoubleVal(-v.D)
		case KLong:
			return LongVal(-v.I)
		case KInt, KShort, KByte, KChar:
			return IntVal(-v.I)
		}
		in.bugf(n.Pos, "unary - on %v", v.K)
	case token.Not:
		v := in.operand(fr, n.X)
		if v.K == KBox {
			v = in.unbox(v, n.Pos)
		}
		if v.K != KBool {
			in.bugf(n.Pos, "unary ! on %v", v.K)
		}
		in.meter.Step(energy.OpArithInt, 1)
		return BoolVal(v.I == 0)
	case token.Inc, token.Dec:
		old := in.readLValue(fr, n.X)
		if old.K == KBox {
			old = in.unbox(old, n.Pos)
		}
		delta := int64(1)
		if n.Op == token.Dec {
			delta = -1
		}
		var updated Value
		switch old.K {
		case KFloat:
			in.chargeArith(KFloat, token.Plus)
			updated = FloatVal(old.D + float64(delta))
		case KDouble:
			in.chargeArith(KDouble, token.Plus)
			updated = DoubleVal(old.D + float64(delta))
		case KLong:
			in.chargeArith(KLong, token.Plus)
			updated = LongVal(old.I + delta)
		case KInt, KShort, KByte, KChar:
			in.chargeArith(old.K, token.Plus)
			updated = Value{K: old.K, I: old.I + delta}
		default:
			in.bugf(n.Pos, "%v on %v", n.Op, old.K)
		}
		in.writeLValue(fr, n.X, updated)
		if n.Postfix {
			return old
		}
		return updated
	}
	in.bugf(n.Pos, "unsupported unary operator %v", n.Op)
	return Value{}
}

// evalStmtExpr evaluates an expression in statement position (expression
// statements and for-loop post clauses), which is nearly always an
// assignment, a call or an increment; dispatch those directly with the same
// step accounting as eval.
func (in *Interp) evalStmtExpr(fr *frame, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Assign:
		in.step()
		in.evalAssign(fr, x)
	case *ast.Call:
		in.step()
		in.evalCall(fr, x)
	case *ast.Unary:
		in.step()
		in.evalUnary(fr, x)
	default:
		in.eval(fr, e)
	}
}

// localCell returns the live cell of an identifier bound to a slot, or nil
// when the identifier is not (yet) a local. Small enough to inline at the
// hot call sites in evalBinary, evalArgs and evalAssign.
func (fr *frame) localCell(n *ast.Ident) *cell {
	if s := int(n.RSlot) - 1; s >= 0 && s < len(fr.locals) {
		if c := &fr.locals[s]; c.live {
			return c
		}
	}
	return nil
}

// operand evaluates an expression that sits in operand position (binary
// operands, call arguments, conditions, return values). It is semantically
// identical to eval — same step accounting, same charges — but dispatches
// the handful of node types that dominate operand position with a short
// type-assertion ladder and reads live local slots in place, skipping a
// call frame and the full dispatch switch per leaf.
func (in *Interp) operand(fr *frame, e ast.Expr) Value {
	switch n := e.(type) {
	case *ast.Ident:
		in.step()
		if s := int(n.RSlot) - 1; s >= 0 && s < len(fr.locals) {
			if c := &fr.locals[s]; c.live {
				in.meter.Step(energy.OpLocal, 1)
				return c.v
			}
		}
		return in.evalIdent(fr, n)
	case *ast.Literal:
		in.step()
		return in.evalLiteral(n)
	case *ast.Binary:
		in.step()
		return in.evalBinary(fr, n)
	case *ast.Select:
		in.step()
		return in.evalSelect(fr, n)
	case *ast.Call:
		in.step()
		return in.evalCall(fr, n)
	}
	return in.eval(fr, e)
}

func (in *Interp) evalBinary(fr *frame, n *ast.Binary) Value {
	switch n.Op {
	case token.AndAnd:
		in.meter.Step(energy.OpBranch, 1)
		if !in.evalCond(fr, n.X) {
			return BoolVal(false)
		}
		return BoolVal(in.evalCond(fr, n.Y))
	case token.OrOr:
		in.meter.Step(energy.OpBranch, 1)
		if in.evalCond(fr, n.X) {
			return BoolVal(true)
		}
		return BoolVal(in.evalCond(fr, n.Y))
	}
	// Ident operands are read in place (the step/charge sequence matches
	// operand exactly); everything else goes through the operand dispatcher.
	var x, y Value
	if id, ok := n.X.(*ast.Ident); ok {
		in.step()
		if c := fr.localCell(id); c != nil {
			in.meter.Step(energy.OpLocal, 1)
			x = c.v
		} else {
			x = in.evalIdent(fr, id)
		}
	} else {
		x = in.operand(fr, n.X)
	}
	if id, ok := n.Y.(*ast.Ident); ok {
		in.step()
		if c := fr.localCell(id); c != nil {
			in.meter.Step(energy.OpLocal, 1)
			y = c.v
		} else {
			y = in.evalIdent(fr, id)
		}
	} else {
		y = in.operand(fr, n.Y)
	}
	if v, ok := in.binaryFast(n.Op, x, y); ok {
		return v
	}
	return in.binary(n.Op, x, y, n.Pos)
}

// binaryFast handles homogeneous int/int and double/double operands, the
// overwhelmingly common cases. The charges are exactly what the generic
// path would produce: promote(int,int)=int and promote(double,double)=
// double, so the charges per operator (including the special division and
// modulus costs, and the charge-before-zero-check order) reproduce the
// generic path exactly.
func (in *Interp) binaryFast(op token.Kind, x, y Value) (Value, bool) {
	if x.K == KInt && y.K == KInt {
		switch op {
		case token.Plus:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I + y.I), true
		case token.Minus:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I - y.I), true
		case token.Star:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I * y.I), true
		case token.Lt:
			in.meter.Step(energy.OpArithInt, 1)
			return BoolVal(x.I < y.I), true
		case token.Le:
			in.meter.Step(energy.OpArithInt, 1)
			return BoolVal(x.I <= y.I), true
		case token.Gt:
			in.meter.Step(energy.OpArithInt, 1)
			return BoolVal(x.I > y.I), true
		case token.Ge:
			in.meter.Step(energy.OpArithInt, 1)
			return BoolVal(x.I >= y.I), true
		case token.Eq:
			in.meter.Step(energy.OpArithInt, 1)
			return BoolVal(x.I == y.I), true
		case token.Ne:
			in.meter.Step(energy.OpArithInt, 1)
			return BoolVal(x.I != y.I), true
		case token.BitAnd:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I & y.I), true
		case token.BitOr:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I | y.I), true
		case token.BitXor:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I ^ y.I), true
		case token.Shl:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I << uint(y.I&63)), true
		case token.Shr:
			in.meter.Step(energy.OpArithInt, 1)
			return IntVal(x.I >> uint(y.I&63)), true
		case token.Slash:
			// Same order as the generic path: the division cost is charged
			// before the zero check throws.
			in.meter.Step(energy.OpDivInt, 1)
			if y.I == 0 {
				in.throw("ArithmeticException", "/ by zero")
			}
			return IntVal(x.I / y.I), true
		case token.Percent:
			in.meter.Step(energy.OpModInt, 1)
			if y.I == 0 {
				in.throw("ArithmeticException", "/ by zero")
			}
			return IntVal(x.I % y.I), true
		}
	} else if x.K == KDouble && y.K == KDouble {
		switch op {
		case token.Plus:
			in.meter.Step(energy.OpArithDouble, 1)
			return DoubleVal(x.D + y.D), true
		case token.Minus:
			in.meter.Step(energy.OpArithDouble, 1)
			return DoubleVal(x.D - y.D), true
		case token.Star:
			in.meter.Step(energy.OpArithDouble, 1)
			return DoubleVal(x.D * y.D), true
		case token.Lt:
			in.meter.Step(energy.OpArithDouble, 1)
			return BoolVal(x.D < y.D), true
		case token.Le:
			in.meter.Step(energy.OpArithDouble, 1)
			return BoolVal(x.D <= y.D), true
		case token.Gt:
			in.meter.Step(energy.OpArithDouble, 1)
			return BoolVal(x.D > y.D), true
		case token.Ge:
			in.meter.Step(energy.OpArithDouble, 1)
			return BoolVal(x.D >= y.D), true
		case token.Eq:
			in.meter.Step(energy.OpArithDouble, 1)
			return BoolVal(x.D == y.D), true
		case token.Ne:
			in.meter.Step(energy.OpArithDouble, 1)
			return BoolVal(x.D != y.D), true
		case token.Slash:
			in.meter.Step(energy.OpDivFP, 1)
			return DoubleVal(x.D / y.D), true // Java FP division yields Inf/NaN, never throws
		case token.Percent:
			in.meter.Step(energy.OpDivFP, 1)
			return DoubleVal(fmod(x.D, y.D)), true
		}
	} else if x.K == KLong && y.K == KLong {
		switch op {
		case token.Plus:
			in.meter.Step(energy.OpArithLong, 1)
			return LongVal(x.I + y.I), true
		case token.Minus:
			in.meter.Step(energy.OpArithLong, 1)
			return LongVal(x.I - y.I), true
		case token.Star:
			in.meter.Step(energy.OpArithLong, 1)
			return LongVal(x.I * y.I), true
		case token.Lt:
			in.meter.Step(energy.OpArithLong, 1)
			return BoolVal(x.I < y.I), true
		case token.Le:
			in.meter.Step(energy.OpArithLong, 1)
			return BoolVal(x.I <= y.I), true
		case token.Gt:
			in.meter.Step(energy.OpArithLong, 1)
			return BoolVal(x.I > y.I), true
		case token.Ge:
			in.meter.Step(energy.OpArithLong, 1)
			return BoolVal(x.I >= y.I), true
		case token.Eq:
			in.meter.Step(energy.OpArithLong, 1)
			return BoolVal(x.I == y.I), true
		case token.Ne:
			in.meter.Step(energy.OpArithLong, 1)
			return BoolVal(x.I != y.I), true
		case token.Slash:
			in.meter.Step(energy.OpDivInt, 1)
			if y.I == 0 {
				in.throw("ArithmeticException", "/ by zero")
			}
			return LongVal(x.I / y.I), true
		case token.Percent:
			in.meter.Step(energy.OpModInt, 1)
			if y.I == 0 {
				in.throw("ArithmeticException", "/ by zero")
			}
			return LongVal(x.I % y.I), true
		}
	} else if x.K == KFloat && y.K == KFloat {
		switch op {
		case token.Plus:
			in.meter.Step(energy.OpArithFloat, 1)
			return FloatVal(x.D + y.D), true
		case token.Minus:
			in.meter.Step(energy.OpArithFloat, 1)
			return FloatVal(x.D - y.D), true
		case token.Star:
			in.meter.Step(energy.OpArithFloat, 1)
			return FloatVal(x.D * y.D), true
		case token.Lt:
			in.meter.Step(energy.OpArithFloat, 1)
			return BoolVal(x.D < y.D), true
		case token.Le:
			in.meter.Step(energy.OpArithFloat, 1)
			return BoolVal(x.D <= y.D), true
		case token.Gt:
			in.meter.Step(energy.OpArithFloat, 1)
			return BoolVal(x.D > y.D), true
		case token.Ge:
			in.meter.Step(energy.OpArithFloat, 1)
			return BoolVal(x.D >= y.D), true
		case token.Eq:
			in.meter.Step(energy.OpArithFloat, 1)
			return BoolVal(x.D == y.D), true
		case token.Ne:
			in.meter.Step(energy.OpArithFloat, 1)
			return BoolVal(x.D != y.D), true
		case token.Slash:
			in.meter.Step(energy.OpDivFP, 1)
			return FloatVal(x.D / y.D), true
		case token.Percent:
			in.meter.Step(energy.OpDivFP, 1)
			return FloatVal(fmod(x.D, y.D)), true
		}
	} else if x.K.IsNumeric() && y.K.IsNumeric() {
		// Mixed-kind numeric pairs: promote and delegate to the same arith
		// helpers the generic path uses, skipping only its non-numeric
		// preamble (string concat, unboxing, reference equality, booleans),
		// none of which can apply here. The position is only consulted for
		// unsupported operators, which this lane never forwards.
		k := promote(x.K, y.K)
		switch op {
		case token.Lt, token.Le, token.Gt, token.Ge, token.Eq, token.Ne:
			in.chargeArith(k, op)
			return BoolVal(compare(op, x, y, k)), true
		case token.Plus, token.Minus, token.Star, token.Slash, token.Percent:
			in.chargeArith(k, op)
			if k == KFloat || k == KDouble {
				return in.floatArith(op, x.AsF64(), y.AsF64(), k, token.Pos{}), true
			}
			return in.intArith(op, x.AsI64(), y.AsI64(), k, token.Pos{}), true
		}
	}
	return Value{}, false
}

// binary applies a (non-short-circuit) binary operator with Java's numeric
// promotion, charging the promoted kind's arithmetic cost.
func (in *Interp) binary(op token.Kind, x, y Value, pos token.Pos) Value {
	// String concatenation.
	if op == token.Plus && (x.K == KString || y.K == KString) {
		xs, ys := x.JavaString(), y.JavaString()
		in.meter.Step(energy.OpStrSetup, 1)
		in.meter.Step(energy.OpStrConcatChar, len(xs)+len(ys))
		in.meter.Alloc(16 + len(xs) + len(ys))
		return StringVal(xs + ys)
	}
	if x.K == KBox {
		x = in.unbox(x, pos)
	}
	if y.K == KBox {
		y = in.unbox(y, pos)
	}
	// Reference / null / string equality.
	if op == token.Eq || op == token.Ne {
		if !x.K.IsNumeric() || !y.K.IsNumeric() {
			in.meter.Step(energy.OpArithInt, 1)
			eq := refEqual(x, y)
			if op == token.Ne {
				eq = !eq
			}
			return BoolVal(eq)
		}
	}
	// Boolean logic without short circuit: & | ^.
	if x.K == KBool && y.K == KBool {
		in.meter.Step(energy.OpArithInt, 1)
		a, b := x.I != 0, y.I != 0
		switch op {
		case token.BitAnd:
			return BoolVal(a && b)
		case token.BitOr:
			return BoolVal(a || b)
		case token.BitXor:
			return BoolVal(a != b)
		case token.Eq:
			return BoolVal(a == b)
		case token.Ne:
			return BoolVal(a != b)
		}
		in.bugf(pos, "operator %v on booleans", op)
	}
	if !x.K.IsNumeric() || !y.K.IsNumeric() {
		in.bugf(pos, "operator %v on %v and %v", op, x.K, y.K)
	}
	k := promote(x.K, y.K)
	switch op {
	case token.Lt, token.Le, token.Gt, token.Ge, token.Eq, token.Ne:
		in.chargeArith(k, op)
		return BoolVal(compare(op, x, y, k))
	}
	in.chargeArith(k, op)
	if k == KFloat || k == KDouble {
		return in.floatArith(op, x.AsF64(), y.AsF64(), k, pos)
	}
	return in.intArith(op, x.AsI64(), y.AsI64(), k, pos)
}

func refEqual(x, y Value) bool {
	if x.K == KNull || y.K == KNull {
		return x.K == y.K
	}
	if x.K == KString && y.K == KString {
		// Deviation from the JLS: string == compares values, since the
		// dialect does not model interning.
		return x.Str() == y.Str()
	}
	return x.R == y.R
}

func promote(a, b Kind) Kind {
	if a == KDouble || b == KDouble {
		return KDouble
	}
	if a == KFloat || b == KFloat {
		return KFloat
	}
	if a == KLong || b == KLong {
		return KLong
	}
	return KInt
}

func compare(op token.Kind, x, y Value, k Kind) bool {
	if k == KFloat || k == KDouble {
		a, b := x.AsF64(), y.AsF64()
		switch op {
		case token.Lt:
			return a < b
		case token.Le:
			return a <= b
		case token.Gt:
			return a > b
		case token.Ge:
			return a >= b
		case token.Eq:
			return a == b
		default:
			return a != b
		}
	}
	a, b := x.AsI64(), y.AsI64()
	switch op {
	case token.Lt:
		return a < b
	case token.Le:
		return a <= b
	case token.Gt:
		return a > b
	case token.Ge:
		return a >= b
	case token.Eq:
		return a == b
	default:
		return a != b
	}
}

// chargeArith charges one arithmetic op of the promoted kind, with modulus
// and division charged their special costs.
func (in *Interp) chargeArith(k Kind, op token.Kind) {
	switch {
	case op == token.Percent && (k == KInt || k == KLong || k == KShort || k == KByte || k == KChar):
		in.meter.Step(energy.OpModInt, 1)
		return
	case op == token.Slash && k.IsIntegral():
		in.meter.Step(energy.OpDivInt, 1)
		return
	case (op == token.Slash || op == token.Percent) && (k == KFloat || k == KDouble):
		in.meter.Step(energy.OpDivFP, 1)
		return
	}
	switch k {
	case KInt:
		in.meter.Step(energy.OpArithInt, 1)
	case KLong:
		in.meter.Step(energy.OpArithLong, 1)
	case KShort, KByte, KChar:
		in.meter.Step(energy.OpArithNarrow, 1)
	case KFloat:
		in.meter.Step(energy.OpArithFloat, 1)
	case KDouble:
		in.meter.Step(energy.OpArithDouble, 1)
	default:
		in.meter.Step(energy.OpArithInt, 1)
	}
}

func (in *Interp) intArith(op token.Kind, a, b int64, k Kind, pos token.Pos) Value {
	mk := func(v int64) Value {
		if k == KLong {
			return LongVal(v)
		}
		return IntVal(v)
	}
	switch op {
	case token.Plus:
		return mk(a + b)
	case token.Minus:
		return mk(a - b)
	case token.Star:
		return mk(a * b)
	case token.Slash:
		if b == 0 {
			in.throw("ArithmeticException", "/ by zero")
		}
		return mk(a / b)
	case token.Percent:
		if b == 0 {
			in.throw("ArithmeticException", "/ by zero")
		}
		return mk(a % b)
	case token.BitAnd:
		return mk(a & b)
	case token.BitOr:
		return mk(a | b)
	case token.BitXor:
		return mk(a ^ b)
	case token.Shl:
		return mk(a << uint(b&63))
	case token.Shr:
		return mk(a >> uint(b&63))
	}
	in.bugf(pos, "unsupported integer operator %v", op)
	return Value{}
}

func (in *Interp) floatArith(op token.Kind, a, b float64, k Kind, pos token.Pos) Value {
	mk := func(v float64) Value {
		if k == KFloat {
			return FloatVal(v)
		}
		return DoubleVal(v)
	}
	switch op {
	case token.Plus:
		return mk(a + b)
	case token.Minus:
		return mk(a - b)
	case token.Star:
		return mk(a * b)
	case token.Slash:
		return mk(a / b) // Java FP division yields Inf/NaN, never throws
	case token.Percent:
		return mk(fmod(a, b))
	}
	in.bugf(pos, "unsupported floating operator %v", op)
	return Value{}
}

func fmod(a, b float64) float64 { return math.Mod(a, b) }

// --- assignment ---

func (in *Interp) evalAssign(fr *frame, n *ast.Assign) Value {
	var rhs Value
	if n.Op == token.Assign {
		if lit, ok := n.RHS.(*ast.ArrayLit); ok {
			t := in.lvalueType(fr, n.LHS)
			rhs = in.buildArrayLit(fr, lit, t)
		} else {
			rhs = in.operand(fr, n.RHS)
		}
	} else {
		old := in.readLValue(fr, n.LHS)
		r := in.operand(fr, n.RHS)
		base := compoundBase(n.Op)
		var ok bool
		if rhs, ok = in.binaryFast(base, old, r); !ok {
			rhs = in.binary(base, old, r, n.Pos)
		}
	}
	// Store straight into a live local slot; writeLValue handles every
	// other target (and unresolved idents) with identical charges.
	if id, ok := n.LHS.(*ast.Ident); ok {
		if c := fr.localCell(id); c != nil {
			in.meter.Step(energy.OpLocal, 1)
			if rhs.K == c.k {
				c.v = rhs
			} else {
				c.v = in.coerceTo(rhs, c.t, id.Pos)
			}
			return rhs
		}
	}
	in.writeLValue(fr, n.LHS, rhs)
	return rhs
}

func compoundBase(op token.Kind) token.Kind {
	switch op {
	case token.PlusEq:
		return token.Plus
	case token.MinusEq:
		return token.Minus
	case token.StarEq:
		return token.Star
	case token.SlashEq:
		return token.Slash
	case token.PercentEq:
		return token.Percent
	case token.AndEq:
		return token.BitAnd
	case token.OrEq:
		return token.BitOr
	case token.XorEq:
		return token.BitXor
	}
	return op
}

// lvalueType reports the declared type of an assignable expression, falling
// back to a best-effort guess for array elements.
func (in *Interp) lvalueType(fr *frame, lhs ast.Expr) ast.Type {
	switch l := lhs.(type) {
	case *ast.Ident:
		if s := int(l.RSlot) - 1; s >= 0 && s < len(fr.locals) {
			if c := &fr.locals[s]; c.live {
				return c.t
			}
		}
		if fr.this != nil {
			if ix, ok := fr.this.Class.fieldIx[l.Name]; ok {
				return fr.this.Class.fields[ix].Type
			}
		}
		if fr.class != nil {
			if slot := fr.class.findStatic(l.Name); slot != nil {
				return slot.Type
			}
		}
	case *ast.Select:
		x := in.eval(fr, l.X)
		switch x.K {
		case KRef:
			obj := x.R.(*Object)
			if ix, ok := obj.Class.fieldIx[l.Name]; ok {
				return obj.Class.fields[ix].Type
			}
		case KClassRef:
			if ci, ok := in.prog.classes[x.R.(string)]; ok {
				if slot := ci.findStatic(l.Name); slot != nil {
					return slot.Type
				}
			}
		}
	case *ast.Index:
		xt := in.lvalueType(fr, l.X)
		return xt.Elem()
	}
	in.bugf(lhs.NodePos(), "cannot determine type of assignment target")
	return ast.Type{}
}

// readLValue evaluates an assignable expression for compound assignment.
func (in *Interp) readLValue(fr *frame, lhs ast.Expr) Value {
	return in.operand(fr, lhs)
}

// writeLValue stores v into an assignable expression, charging the store.
// Identifier and field targets use the same resolver annotations and caches
// as the read paths; writeIdentSlow keeps the original dynamic ladder.
func (in *Interp) writeLValue(fr *frame, lhs ast.Expr, v Value) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if s := int(l.RSlot) - 1; s >= 0 && s < len(fr.locals) {
			if c := &fr.locals[s]; c.live {
				in.meter.Step(energy.OpLocal, 1)
				if v.K == c.k {
					c.v = v
				} else {
					c.v = in.coerceTo(v, c.t, l.Pos)
				}
				return
			}
		}
		switch l.RKind {
		case ast.ResField:
			if this := fr.this; this != nil {
				if ix := int(l.RIx); ix < len(this.Slots) {
					in.meter.FieldAccess(this.Base + 16 + uint64(8*ix))
					if fi := &this.Class.fields[ix]; v.K == fi.K {
						this.Slots[ix] = v
					} else {
						this.Slots[ix] = in.coerceTo(v, fi.Type, l.Pos)
					}
					return
				}
			}
		case ast.ResStaticRef:
			if ix := int(l.RIx); ix < len(in.prog.statRefs) {
				slot := in.prog.statRefs[ix]
				in.meter.StaticAccess(slot.Addr)
				if v.K == slot.K {
					slot.V = v
				} else {
					slot.V = in.coerceTo(v, slot.Type, l.Pos)
				}
				return
			}
		case ast.ResStatic:
			if fr.class != nil {
				if slot := fr.class.flatStatics[l.Name]; slot != nil {
					in.meter.StaticAccess(slot.Addr)
					if v.K == slot.K {
						slot.V = v
					} else {
						slot.V = in.coerceTo(v, slot.Type, l.Pos)
					}
					return
				}
			}
		}
		in.writeIdentSlow(fr, l, v)
	case *ast.Select:
		x := in.operand(fr, l.X)
		switch x.K {
		case KRef:
			obj := x.R.(*Object)
			var ix int
			if si := int(l.SiteIx) - 1; si >= 0 && si < len(in.siteCache) {
				sc := &in.siteCache[si]
				if sc.class != obj.Class {
					fix, ok := obj.Class.fieldIx[l.Name]
					if !ok {
						in.bugf(l.Pos, "class %s has no field %s", obj.Class.Name, l.Name)
					}
					sc.class, sc.ix = obj.Class, int32(fix)
				}
				ix = int(sc.ix)
			} else {
				fix, ok := obj.Class.fieldIx[l.Name]
				if !ok {
					in.bugf(l.Pos, "class %s has no field %s", obj.Class.Name, l.Name)
				}
				ix = fix
			}
			in.meter.FieldAccess(obj.Base + 16 + uint64(8*ix))
			if fi := &obj.Class.fields[ix]; v.K == fi.K {
				obj.Slots[ix] = v
			} else {
				obj.Slots[ix] = in.coerceTo(v, fi.Type, l.Pos)
			}
			return
		case KClassRef:
			cls := x.R.(string)
			if si := int(l.SiteIx) - 1; si >= 0 && si < len(in.prog.sites) {
				if ps := &in.prog.sites[si]; ps.kind == siteStaticSel && ps.cls == cls {
					in.meter.StaticAccess(ps.slot.Addr)
					ps.slot.V = in.coerceTo(v, ps.slot.Type, l.Pos)
					return
				}
			}
			if ci, ok := in.prog.classes[cls]; ok {
				if slot := ci.findStatic(l.Name); slot != nil {
					in.meter.StaticAccess(slot.Addr)
					slot.V = in.coerceTo(v, slot.Type, l.Pos)
					return
				}
			}
			in.bugf(l.Pos, "unknown static field %s.%s", cls, l.Name)
		case KNull:
			in.throw("NullPointerException", "store to field "+l.Name+" on null")
		}
		in.bugf(l.Pos, "cannot assign field of %v", x.K)
	case *ast.Index:
		arr, idx := in.evalIndexOperands(fr, l)
		in.meter.ArrayAccess(arr.addr(idx), arr.ES)
		arr.set(idx, in.coerceTo(v, arr.Elem, l.Pos))
		return
	default:
		in.bugf(lhs.NodePos(), "invalid assignment target %T", lhs)
	}
}

// writeIdentSlow is the dynamic store ladder for identifiers the resolver
// left unresolved. Locals were already handled by writeLValue's slot check.
func (in *Interp) writeIdentSlow(fr *frame, l *ast.Ident, v Value) {
	if fr.this != nil {
		if ix, ok := fr.this.Class.fieldIx[l.Name]; ok {
			in.meter.FieldAccess(fr.this.Base + 16 + uint64(8*ix))
			fr.this.Slots[ix] = in.coerceTo(v, fr.this.Class.fields[ix].Type, l.Pos)
			return
		}
	}
	if fr.class != nil {
		if slot := fr.class.findStatic(l.Name); slot != nil {
			in.meter.StaticAccess(slot.Addr)
			slot.V = in.coerceTo(v, slot.Type, l.Pos)
			return
		}
	}
	in.bugf(l.Pos, "assignment to unknown variable %s", l.Name)
}

// --- conversions ---

func zeroValue(t ast.Type) Value {
	if t.Dims > 0 {
		return NullVal()
	}
	switch kindOfType(t) {
	case KInt:
		return IntVal(0)
	case KLong:
		return LongVal(0)
	case KShort:
		return ShortVal(0)
	case KByte:
		return ByteVal(0)
	case KChar:
		return CharVal(0)
	case KBool:
		return BoolVal(false)
	case KFloat:
		return FloatVal(0)
	case KDouble:
		return DoubleVal(0)
	default:
		return NullVal()
	}
}

// coerceTo converts a value to a declared type, charging narrowing and boxing
// costs. It is deliberately lenient about implicit narrowing (the JEPO
// refactorer relies on double→float rewrites remaining executable).
func (in *Interp) coerceTo(v Value, t ast.Type, pos token.Pos) Value {
	// Identity fast paths for the kinds that dominate stores; they skip the
	// kindOfType call below without changing any conversion semantics.
	if t.Dims == 0 {
		switch {
		case v.K == KInt && t.Kind == ast.Int,
			v.K == KDouble && t.Kind == ast.Double,
			v.K == KBool && t.Kind == ast.Boolean,
			v.K == KLong && t.Kind == ast.Long:
			return v
		}
	}
	if t.Dims > 0 {
		if v.K == KArr || v.K == KNull {
			return v
		}
		in.bugf(pos, "cannot assign %v to array type %s", v.K, t)
	}
	target := kindOfType(t)
	if v.K == target {
		return v
	}
	switch target {
	case KInt, KLong, KShort, KByte, KChar:
		if v.K == KBox {
			v = in.unbox(v, pos)
		}
		if !v.K.IsNumeric() {
			in.bugf(pos, "cannot convert %v to %s", v.K, t)
		}
		switch target {
		case KInt:
			return IntVal(v.AsI64())
		case KLong:
			return LongVal(v.AsI64())
		case KShort:
			in.meter.Step(energy.OpArithNarrow, 1)
			return ShortVal(v.AsI64())
		case KByte:
			in.meter.Step(energy.OpArithNarrow, 1)
			return ByteVal(v.AsI64())
		case KChar:
			in.meter.Step(energy.OpArithNarrow, 1)
			return CharVal(v.AsI64())
		}
	case KFloat, KDouble:
		if v.K == KBox {
			v = in.unbox(v, pos)
		}
		if !v.K.IsNumeric() {
			in.bugf(pos, "cannot convert %v to %s", v.K, t)
		}
		if target == KFloat {
			return FloatVal(v.AsF64())
		}
		return DoubleVal(v.AsF64())
	case KBool:
		if v.K == KBox {
			v = in.unbox(v, pos)
		}
		if v.K == KBool {
			return v
		}
		in.bugf(pos, "cannot convert %v to boolean", v.K)
	case KString:
		if v.K == KNull {
			return v
		}
		if v.K == KString {
			return v
		}
		in.bugf(pos, "cannot convert %v to String", v.K)
	case KSB:
		if v.K == KSB || v.K == KNull {
			return v
		}
		in.bugf(pos, "cannot convert %v to StringBuilder", v.K)
	case KBox:
		if v.K == KNull {
			return v
		}
		if v.K == KBox {
			return v
		}
		return in.box(t.Name, v, pos)
	case KRef:
		switch v.K {
		case KRef, KNull, KThrow, KString, KArr, KSB, KBox:
			// Object-typed storage accepts any reference.
			return v
		}
		in.bugf(pos, "cannot convert %v to %s", v.K, t.Name)
	case KVoid:
		return v
	}
	in.bugf(pos, "cannot convert %v to %s", v.K, t)
	return Value{}
}

// box wraps a primitive into a wrapper object, charging the Integer cache
// when applicable — the mechanism behind Table I's wrapper-class row.
func (in *Interp) box(wrapper string, v Value, pos token.Pos) Value {
	pk := wrapperKind(wrapper)
	if pk == KVoid {
		in.bugf(pos, "unknown wrapper class %s", wrapper)
	}
	prim := in.coerceTo(v, typeOfKind(pk), pos)
	if wrapper == "Integer" && prim.I >= -128 && prim.I <= 127 && pk == KInt {
		in.meter.Step(energy.OpBoxCached, 1)
		return Value{K: KBox, R: &Box{Class: wrapper, V: prim, Cached: true}}
	}
	in.meter.Step(energy.OpBoxAlloc, 1)
	return Value{K: KBox, R: &Box{Class: wrapper, V: prim, Base: in.meter.Alloc(16)}}
}

func (in *Interp) unbox(v Value, pos token.Pos) Value {
	if v.K != KBox {
		return v
	}
	in.meter.Step(energy.OpUnbox, 1)
	return v.R.(*Box).V
}

func typeOfKind(k Kind) ast.Type {
	switch k {
	case KInt:
		return ast.Type{Kind: ast.Int}
	case KLong:
		return ast.Type{Kind: ast.Long}
	case KShort:
		return ast.Type{Kind: ast.Short}
	case KByte:
		return ast.Type{Kind: ast.Byte}
	case KChar:
		return ast.Type{Kind: ast.Char}
	case KBool:
		return ast.Type{Kind: ast.Boolean}
	case KFloat:
		return ast.Type{Kind: ast.Float}
	case KDouble:
		return ast.Type{Kind: ast.Double}
	}
	return ast.Type{Kind: ast.Void}
}

func (in *Interp) evalCast(fr *frame, n *ast.Cast) Value {
	return in.castValue(in.eval(fr, n.X), n)
}

// castValue applies a cast to an already-evaluated value — shared by the
// tree-walk and the VM's OpCast.
func (in *Interp) castValue(v Value, n *ast.Cast) Value {
	t := n.Type
	if t.Dims > 0 {
		if v.K == KArr || v.K == KNull {
			return v
		}
		in.throw("ClassCastException", fmt.Sprintf("%v to %s", v.K, t))
	}
	switch kindOfType(t) {
	case KInt, KLong, KShort, KByte, KChar, KFloat, KDouble:
		if v.K == KBox {
			v = in.unbox(v, n.Pos)
		}
		if !v.K.IsNumeric() {
			in.throw("ClassCastException", fmt.Sprintf("%v to %s", v.K, t))
		}
		in.chargeArith(kindOfType(t), token.Plus)
		return in.coerceTo(v, t, n.Pos)
	case KBool:
		if v.K == KBool {
			return v
		}
		in.throw("ClassCastException", fmt.Sprintf("%v to boolean", v.K))
	case KString:
		if v.K == KString || v.K == KNull {
			return v
		}
		in.throw("ClassCastException", fmt.Sprintf("%v to String", v.K))
	case KSB:
		if v.K == KSB || v.K == KNull {
			return v
		}
		in.throw("ClassCastException", fmt.Sprintf("%v to StringBuilder", v.K))
	case KBox:
		if v.K == KBox || v.K == KNull {
			return v
		}
		return in.box(t.Name, v, n.Pos)
	default:
		if v.K == KNull {
			return v
		}
		if v.K == KRef {
			if in.valueInstanceOf(v, t.Name) || t.Name == "Object" {
				return v
			}
			in.throw("ClassCastException",
				fmt.Sprintf("%s to %s", v.R.(*Object).Class.Name, t.Name))
		}
		if v.K == KThrow && IsExceptionClass(t.Name) {
			return v
		}
		if t.Name == "Object" {
			return v
		}
		in.throw("ClassCastException", fmt.Sprintf("%v to %s", v.K, t.Name))
	}
	return Value{}
}

func (in *Interp) valueInstanceOf(v Value, name string) bool {
	switch v.K {
	case KNull:
		return false
	case KString:
		return name == "String" || name == "Object"
	case KSB:
		return name == "StringBuilder" || name == "Object"
	case KArr:
		return name == "Object"
	case KBox:
		return v.R.(*Box).Class == name || name == "Object" || name == "Number"
	case KThrow:
		return v.R.(*Throwable).instanceOf(name) || name == "Object"
	case KRef:
		if name == "Object" {
			return true
		}
		for c := v.R.(*Object).Class; c != nil; c = c.Super {
			if c.Name == name {
				return true
			}
		}
		// Walk declared extends of built-in roots.
		return false
	}
	return false
}

// --- calls ---

func (in *Interp) evalCall(fr *frame, n *ast.Call) Value {
	if n.Recv == nil {
		return in.dispatchCall(fr, n, Value{}, false, in.evalArgs(fr, n.Args))
	}
	recv := in.operand(fr, n.Recv)
	return in.dispatchCall(fr, n, recv, true, in.evalArgs(fr, n.Args))
}

// dispatchCall resolves and invokes a call site with an already-evaluated
// receiver and arguments — shared by the tree-walk and the VM's OpCall. It
// releases args on every successful return path (an interpreter error or
// mini-Java exception abandons the slice to the GC, like the walker always
// has).
func (in *Interp) dispatchCall(fr *frame, n *ast.Call, recv Value, hasRecv bool, args []Value) Value {
	// Unqualified call: method of the enclosing class. The monomorphic site
	// cache keys on the frame's dynamic class, so repeated calls skip the
	// method-table lookup entirely.
	if !hasRecv {
		var m *ast.Method
		if ix := int(n.SiteIx) - 1; ix >= 0 && ix < len(in.siteCache) {
			sc := &in.siteCache[ix]
			if sc.class == fr.class {
				m = sc.m
			} else if m = fr.class.findMethod(n.Name, len(args)); m != nil {
				sc.class, sc.m = fr.class, m
			}
		} else {
			m = fr.class.findMethod(n.Name, len(args))
		}
		if m == nil {
			in.bugf(n.Pos, "unknown method %s/%d in class %s", n.Name, len(args), fr.class.Name)
		}
		if m.Mods.Has(ast.ModStatic) {
			v := in.invoke(fr.class, nil, m, args)
			in.releaseArgs(args)
			return v
		}
		if fr.this == nil {
			in.bugf(n.Pos, "instance method %s called from static context", n.Name)
		}
		v := in.invoke(fr.this.Class, fr.this, m, args)
		in.releaseArgs(args)
		return v
	}
	switch recv.K {
	case KClassRef:
		cls := recv.R.(string)
		// Load-resolved static dispatch: the site table pins the target
		// when the receiver is a statically-known class name.
		if ix := int(n.SiteIx) - 1; ix >= 0 && ix < len(in.prog.sites) {
			switch ps := &in.prog.sites[ix]; ps.kind {
			case siteStaticCall:
				if ps.cls == cls {
					v := in.invoke(ps.ci, nil, ps.m, args)
					in.releaseArgs(args)
					return v
				}
			case siteBuiltinStaticCall:
				if ps.cls == cls {
					if v, ok := in.callBuiltinStatic(cls, n.Name, args, n.Pos); ok {
						in.releaseArgs(args)
						return v
					}
				}
			}
		}
		if cls == "System.out" {
			if v, ok := in.callBuiltinInstance(recv, n.Name, args, n.Pos); ok {
				in.releaseArgs(args)
				return v
			}
			in.bugf(n.Pos, "unknown method System.out.%s", n.Name)
		}
		if ci, ok := in.prog.classes[cls]; ok {
			if m := ci.findMethod(n.Name, len(args)); m != nil {
				if !m.Mods.Has(ast.ModStatic) {
					in.bugf(n.Pos, "instance method %s.%s called statically", cls, n.Name)
				}
				v := in.invoke(ci, nil, m, args)
				in.releaseArgs(args)
				return v
			}
		}
		if v, ok := in.callBuiltinStatic(cls, n.Name, args, n.Pos); ok {
			in.releaseArgs(args)
			return v
		}
		in.bugf(n.Pos, "unknown static method %s.%s/%d", cls, n.Name, len(args))
	case KRef:
		obj := recv.R.(*Object)
		var m *ast.Method
		if ix := int(n.SiteIx) - 1; ix >= 0 && ix < len(in.siteCache) {
			sc := &in.siteCache[ix]
			if sc.class == obj.Class {
				m = sc.m
			} else if m = obj.Class.findMethod(n.Name, len(args)); m != nil {
				sc.class, sc.m = obj.Class, m
			}
		} else {
			m = obj.Class.findMethod(n.Name, len(args))
		}
		if m == nil {
			in.bugf(n.Pos, "class %s has no method %s/%d", obj.Class.Name, n.Name, len(args))
		}
		v := in.invoke(obj.Class, obj, m, args)
		in.releaseArgs(args)
		return v
	case KNull:
		in.throw("NullPointerException", "call "+n.Name+" on null")
	default:
		if v, ok := in.callBuiltinInstance(recv, n.Name, args, n.Pos); ok {
			in.releaseArgs(args)
			return v
		}
		in.bugf(n.Pos, "no method %s on %v", n.Name, recv.K)
	}
	return Value{}
}

// evalArgs evaluates call arguments into a pooled slice; the caller releases
// it once the callee has copied the values out.
func (in *Interp) evalArgs(fr *frame, exprs []ast.Expr) []Value {
	args := in.grabArgs(len(exprs))
	for i, a := range exprs {
		if id, ok := a.(*ast.Ident); ok {
			in.step()
			if c := fr.localCell(id); c != nil {
				in.meter.Step(energy.OpLocal, 1)
				args[i] = c.v
				continue
			}
			args[i] = in.evalIdent(fr, id)
			continue
		}
		args[i] = in.operand(fr, a)
	}
	return args
}
