// Package rapl reproduces the energy-measurement substrate JEPO injects into
// Java methods: Intel Running Average Power Limit (RAPL) counters.
//
// Two back ends are provided. SimMSR exposes the machine-specific-register
// (MSR) protocol — 32-bit energy-status counters in energy-status units that
// wrap around — backed by the energy-model meter, so the full read/unwrap
// path is exercised exactly as it would be against /dev/cpu/*/msr. Sysfs
// reads the Linux powercap interface (/sys/class/powercap/intel-rapl*) and is
// used automatically on hosts that expose real RAPL counters.
package rapl

import (
	"fmt"

	"jepo/internal/energy"
)

// Real Intel MSR addresses for the RAPL interface.
const (
	MSRPowerUnit        = 0x606 // MSR_RAPL_POWER_UNIT
	MSRPkgEnergyStatus  = 0x611 // MSR_PKG_ENERGY_STATUS
	MSRDRAMEnergyStatus = 0x619 // MSR_DRAM_ENERGY_STATUS
	MSRPP0EnergyStatus  = 0x639 // MSR_PP0_ENERGY_STATUS (core domain)
)

// Domain identifies a RAPL power domain.
type Domain int

// The three domains the paper's evaluation reports (package and CPU/core) or
// that stock RAPL exposes alongside them (DRAM).
const (
	Package Domain = iota
	Core
	DRAM
	numDomains
)

// String names the domain as the paper does.
func (d Domain) String() string {
	switch d {
	case Package:
		return "package"
	case Core:
		return "core"
	case DRAM:
		return "dram"
	}
	return fmt.Sprintf("domain(%d)", int(d))
}

// Domains lists all modelled domains.
func Domains() []Domain { return []Domain{Package, Core, DRAM} }

// MSRReader reads one machine-specific register.
type MSRReader interface {
	ReadMSR(reg uint32) (uint64, error)
}

// defaultESU is the stock energy-status-unit exponent: energies are counted
// in units of 2^-16 J ≈ 15.3 µJ, encoded in bits 12:8 of MSR_RAPL_POWER_UNIT.
const defaultESU = 16

// SimMSR is a simulated MSR file backed by an energy.Meter. Its counters have
// the real registers' semantics: 32 significant bits, energy-status-unit
// scaling, wraparound.
type SimMSR struct {
	meter *energy.Meter
	esu   uint // energy unit = 2^-esu joules
}

// NewSimMSR builds a simulated MSR file over m with the stock energy unit.
func NewSimMSR(m *energy.Meter) *SimMSR { return &SimMSR{meter: m, esu: defaultESU} }

// SetESU overrides the energy-status-unit exponent (energy unit = 2^-esu J).
// Exponents above 31 or zero are rejected as the hardware cannot encode them.
func (s *SimMSR) SetESU(esu uint) error {
	if esu == 0 || esu > 31 {
		return fmt.Errorf("rapl: energy status unit exponent %d out of range [1,31]", esu)
	}
	s.esu = esu
	return nil
}

// counts converts joules to energy-status counts, truncated to 32 bits.
func (s *SimMSR) counts(j energy.Joules) uint64 {
	unit := 1.0 / float64(uint64(1)<<s.esu)
	return uint64(float64(j)/unit) & 0xFFFFFFFF
}

// ReadMSR implements MSRReader for the registers RAPL defines.
func (s *SimMSR) ReadMSR(reg uint32) (uint64, error) {
	snap := s.meter.Snapshot()
	switch reg {
	case MSRPowerUnit:
		// Power unit in bits 3:0, energy unit in 12:8, time unit in 19:16.
		return uint64(3) | uint64(s.esu)<<8 | uint64(10)<<16, nil
	case MSRPkgEnergyStatus:
		return s.counts(snap.Package), nil
	case MSRPP0EnergyStatus:
		return s.counts(snap.Core), nil
	case MSRDRAMEnergyStatus:
		return s.counts(snap.DRAM), nil
	}
	return 0, fmt.Errorf("rapl: unsupported MSR 0x%x", reg)
}

// EnergyUnit decodes the energy-status unit (in joules per count) from a
// MSR_RAPL_POWER_UNIT value.
func EnergyUnit(powerUnit uint64) energy.Joules {
	esu := (powerUnit >> 8) & 0x1F
	return energy.Joules(1.0 / float64(uint64(1)<<esu))
}
