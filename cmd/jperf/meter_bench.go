// The bench -meter mode quantifies the metering floor: the share of VM
// wall-clock spent issuing the Meter.Step/Meter.Access/cache-simulation
// sequence both engines must issue identically. For every Table I row it
// measures the full VM with the metering fast path on and off
// (JEPO_METER_FASTPATH), then replays the run's exact charge volume — every
// Step by op, every cache access with the observed hit/miss mix — through a
// bare meter with no interpreter attached. The replay time is the floor; its
// share of the VM time is what Amdahl caps any dispatch optimisation at.
// The on/off pair must land on identical joule bits, so the trajectory file
// doubles as a fast-path equivalence check.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"jepo/internal/energy"
	"jepo/internal/minijava/interp"
	"jepo/internal/minijava/parser"
	"jepo/internal/tables"
)

// meterBenchPoint is one row's floor measurement. The "slow" columns are the
// JEPO_METER_FASTPATH=off configuration — the metering code as it was before
// the fast path — so FloorShareSlowPct/FloorSharePct are the before/after
// split of the same workload.
type meterBenchPoint struct {
	Name         string  `json:"name"`
	Runs         int     `json:"runs"`
	VMNsPerOp    float64 `json:"vm_ns_per_op"`      // full VM, fast path on
	VMSlowNsOp   float64 `json:"vm_slow_ns_per_op"` // full VM, fast path off
	ReplayNsOp   float64 `json:"meter_replay_ns_per_op"`
	ReplaySlowNs float64 `json:"meter_replay_slow_ns_per_op"`

	Charges  uint64 `json:"charges_per_op"`  // Step calls per B.f execution
	Accesses uint64 `json:"accesses_per_op"` // cache line touches per execution

	FloorSharePct     float64 `json:"floor_share_pct"`      // replay/vm, fast path on
	FloorShareSlowPct float64 `json:"floor_share_slow_pct"` // replay/vm, fast path off
	FastpathGainPct   float64 `json:"fastpath_gain_pct"`    // 100*(vmSlow-vm)/vmSlow
	EnergyEqual       bool    `json:"energy_equal"`         // on/off joule bits identical
}

// meterBenchReport is the BENCH_meter.json document.
type meterBenchReport struct {
	GeneratedAt       string            `json:"generated_at"`
	GoVersion         string            `json:"go_version"`
	Benchmarks        []meterBenchPoint `json:"benchmarks"`
	MeanFloorShare    float64           `json:"mean_floor_share_pct"`
	MeanFloorSlow     float64           `json:"mean_floor_share_slow_pct"`
	MeanFastpathGain  float64           `json:"mean_fastpath_gain_pct"`
	MeanVMSpeedupSlow float64           `json:"mean_vm_fastpath_speedup"` // geomean vmSlow/vm
}

// meterProfile is what one measured VM run charges: per-op Step totals and
// the cache hit/miss mix, summed over the timed repeats.
type meterProfile struct {
	counts       [energy.NumOps]uint64
	hits, misses uint64
}

func (p *meterProfile) charges() (n uint64) {
	for _, c := range p.counts {
		n += c
	}
	return n
}

// meterVMRun measures repeats warm B.f calls on the VM engine against a fresh
// meter, and returns the wall time per call, the exact package energy of the
// timed window, and the charge profile the window issued. The meter honours
// JEPO_METER_FASTPATH as set by the caller.
func meterVMRun(src string, repeats int) (nsOp float64, pkg energy.Joules, prof meterProfile, err error) {
	f, err := parser.Parse("bench.java", src)
	if err != nil {
		return 0, 0, prof, err
	}
	prog, err := interp.Load(f)
	if err != nil {
		return 0, 0, prof, err
	}
	meter := energy.NewMeter(energy.DefaultCosts())
	in := interp.New(prog, meter, interp.WithMaxOps(2_000_000_000), interp.WithEngine(interp.EngineVM))
	if err := in.InitStatics(); err != nil {
		return 0, 0, prof, err
	}
	if _, err := in.CallStatic("B", "f"); err != nil {
		return 0, 0, prof, err
	}
	var c0 [energy.NumOps]uint64
	for op := 0; op < energy.NumOps; op++ {
		c0[op] = meter.OpCount(energy.Op(op))
	}
	h0, m0 := meter.CacheStats()
	before := meter.Snapshot()
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := in.CallStatic("B", "f"); err != nil {
			return 0, 0, prof, err
		}
	}
	wall := time.Since(t0)
	d := meter.Snapshot().Sub(before)
	for op := 0; op < energy.NumOps; op++ {
		prof.counts[op] = meter.OpCount(energy.Op(op)) - c0[op]
	}
	h1, m1 := meter.CacheStats()
	prof.hits, prof.misses = h1-h0, m1-m0
	return float64(wall.Nanoseconds()) / float64(repeats), d.Package, prof, nil
}

// meterReplay drives the profile's charge volume through a bare meter and
// times it: every Step the window issued, by op, plus the window's cache
// accesses reproduced with the same hit/miss mix (a resident line re-touched
// for the hits, a fresh line per access for the misses, via AccessRun). The
// interpreter contributes nothing here, so this is the metering floor the VM
// time cannot go below while the model's charge sequence is preserved.
func meterReplay(prof meterProfile, repeats int) float64 {
	meter := energy.NewMeter(energy.DefaultCosts())
	const line = 64
	// Prime one line so the hit run below hits from its first access.
	hitBase := meter.Alloc(line)
	meter.Access(hitBase, 8)
	t0 := time.Now()
	for op := 0; op < energy.NumOps; op++ {
		for i := uint64(0); i < prof.counts[op]; i++ {
			meter.Step(energy.Op(op), 1)
		}
	}
	if prof.hits > 0 {
		meter.AccessRun(hitBase, 0, int(prof.hits), 8)
	}
	if prof.misses > 0 {
		// A line-sized stride walks a fresh line per access: every access a
		// compulsory miss, like the traversal rows' column-major sweeps.
		missBase := meter.Alloc(int(prof.misses+1) * line)
		meter.AccessRun(missBase, line, int(prof.misses), 8)
	}
	wall := time.Since(t0)
	return float64(wall.Nanoseconds()) / float64(repeats)
}

// withFastPath runs fn with JEPO_METER_FASTPATH forced to the given setting,
// restoring the previous environment after.
func withFastPath(on bool, fn func() error) error {
	prev, had := os.LookupEnv(energy.FastPathEnv)
	val := ""
	if !on {
		val = "off"
	}
	if err := os.Setenv(energy.FastPathEnv, val); err != nil {
		return err
	}
	defer func() {
		if had {
			os.Setenv(energy.FastPathEnv, prev)
		} else {
			os.Unsetenv(energy.FastPathEnv)
		}
	}()
	return fn()
}

func runMeterBenchOne(b tables.InterpBench, repeats int) (meterBenchPoint, error) {
	var fastNs, slowNs float64
	var fastPkg, slowPkg energy.Joules
	var prof meterProfile
	var replayFast, replaySlow float64
	err := withFastPath(true, func() (err error) {
		fastNs, fastPkg, prof, err = meterVMRun(b.Src, repeats)
		if err == nil {
			replayFast = meterReplay(prof, repeats)
		}
		return err
	})
	if err != nil {
		return meterBenchPoint{}, err
	}
	err = withFastPath(false, func() (err error) {
		slowNs, slowPkg, _, err = meterVMRun(b.Src, repeats)
		if err == nil {
			replaySlow = meterReplay(prof, repeats)
		}
		return err
	})
	if err != nil {
		return meterBenchPoint{}, err
	}
	if fastPkg != slowPkg {
		return meterBenchPoint{}, fmt.Errorf("fast path changed the joule bits: on=%v off=%v", fastPkg, slowPkg)
	}
	r := uint64(repeats)
	return meterBenchPoint{
		Name:              b.Name,
		Runs:              repeats,
		VMNsPerOp:         fastNs,
		VMSlowNsOp:        slowNs,
		ReplayNsOp:        replayFast,
		ReplaySlowNs:      replaySlow,
		Charges:           prof.charges() / r,
		Accesses:          (prof.hits + prof.misses) / r,
		FloorSharePct:     100 * replayFast / fastNs,
		FloorShareSlowPct: 100 * replaySlow / slowNs,
		FastpathGainPct:   100 * (slowNs - fastNs) / slowNs,
		EnergyEqual:       true,
	}, nil
}

func runMeterBench(out string, repeats int) error {
	report := meterBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	var sumFloor, sumSlow, sumGain, logSpeed float64
	for _, b := range tables.InterpBenches() {
		pt, err := runMeterBenchOne(b, repeats)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		report.Benchmarks = append(report.Benchmarks, pt)
		sumFloor += pt.FloorSharePct
		sumSlow += pt.FloorShareSlowPct
		sumGain += pt.FastpathGainPct
		logSpeed += math.Log(pt.VMSlowNsOp / pt.VMNsPerOp)
		fmt.Printf("%-40s vm %10.0f ns/op (off %10.0f)   floor %5.1f%% (off %5.1f%%)   gain %5.1f%%\n",
			pt.Name, pt.VMNsPerOp, pt.VMSlowNsOp, pt.FloorSharePct, pt.FloorShareSlowPct, pt.FastpathGainPct)
	}
	n := float64(len(report.Benchmarks))
	report.MeanFloorShare = sumFloor / n
	report.MeanFloorSlow = sumSlow / n
	report.MeanFastpathGain = sumGain / n
	report.MeanVMSpeedupSlow = math.Exp(logSpeed / n)
	fmt.Printf("mean metering floor: %.1f%% of VM time (was %.1f%% with the fast path off); fast path cuts VM time %.1f%% (%.2fx)\n",
		report.MeanFloorShare, report.MeanFloorSlow, report.MeanFastpathGain, report.MeanVMSpeedupSlow)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report.Benchmarks))
	return nil
}
