// Optimizer example: run the Table IV experiment for one classifier — the
// Random Forest hot kernel on airlines data — showing how JEPO's automatic
// refactoring (modulus masking, static hoisting, double→float narrowing,
// loop interchange) translates into measured package/CPU/time improvements.
package main

import (
	"context"
	"fmt"
	"log"

	"jepo/internal/stats"
	"jepo/internal/tables"
)

func main() {
	cfg := tables.Table4Config{
		Seed:      20200518,
		Instances: 2000,
		Reps:      2,
		Protocol:  stats.Protocol{Runs: 3, MaxRounds: 5},
		CVFolds:   5,
		Progress:  func(msg string) { fmt.Println("  ", msg) },
	}
	fmt.Println("running the §VIII validation pipeline (reduced scale)...")
	rows, err := tables.Table4(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tables.RenderTable4(rows))
	fmt.Println()
	var rf tables.Table4Row
	for _, r := range rows {
		if r.Classifier == "RandomForest" {
			rf = r
		}
	}
	fmt.Printf("headline: Random Forest improved %.2f%% package / %.2f%% CPU / %.2f%% time\n",
		rf.PackagePct, rf.CPUPct, rf.TimePct)
	fmt.Println("(the paper reports 14.46% / 14.19% / 12.93% on real hardware)")
}
