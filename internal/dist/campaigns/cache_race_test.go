package campaigns

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"

	"jepo/internal/core"
	"jepo/internal/corpus"
	"jepo/internal/engine"
	"jepo/internal/minijava/interp"
)

// TestSharedStoreRaceStress is the concurrency acceptance gate for the
// artifact engine: a sched pool at -jobs GOMAXPROCS (core.AnalyzeAll) and an
// in-process dist campaign (AnalyzeCorpus over PipeSpawner workers) hammer
// ONE shared store concurrently, alongside a loop of direct Sample calls over
// the same sources. Run under -race by scripts/check.sh. Assertions: every
// consumer's output is bit-identical to a disabled-cache baseline, and the
// shared store tallies both hits and misses (i.e. the consumers really did
// share artifacts rather than each building their own).
func TestSharedStoreRaceStress(t *testing.T) {
	const classifier = "RandomTree"
	proj, err := corpus.Generate(classifier, campaignSeed)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline with the cache disabled: the pre-engine pipeline's bytes.
	off := engine.New(engine.Config{Disabled: true})
	baseline, _, err := core.AnalyzeAll(context.Background(), proj, core.AnalyzeConfig{Jobs: 1, Cache: off})
	if err != nil {
		t.Fatal(err)
	}
	baseView := core.CorpusView(baseline)

	// One shared store for everything below. The dist PipeSpawner workers run
	// in-process and reach their cache via engine.Default(), so the default is
	// swapped to the shared engine for the duration.
	shared := engine.New(engine.Config{})
	prev := engine.SetDefault(shared)
	defer engine.SetDefault(prev)

	benchSrcs := []engine.Source{{Path: "bench.java", Source: `class B {
	static double f() {
		double acc = 0;
		for (int i = 0; i < 5000; i++) { acc += i % 7; }
		return acc;
	}
}`}}
	benchSpec := engine.RunSpec{CallClass: "B", CallMethod: "f", MaxOps: 10_000_000}
	benchRef, err := engine.New(engine.Config{Disabled: true}).Sample(context.Background(), benchSrcs, benchSpec)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var schedReport, distReport *core.CorpusReport
	var schedErr, distErr error
	errs := make(chan error, 16)

	// Consumer 1: sched pool at full width, explicitly on the shared store.
	wg.Add(1)
	go func() {
		defer wg.Done()
		schedReport, _, schedErr = core.AnalyzeAll(context.Background(), proj,
			core.AnalyzeConfig{Jobs: runtime.GOMAXPROCS(0), Cache: shared})
	}()

	// Consumer 2: dist campaign over in-process pipe workers, which hydrate
	// from the same store through engine.Default().
	wg.Add(1)
	go func() {
		defer wg.Done()
		var rep *core.CorpusReport
		rep, _, distErr = AnalyzeCorpus(context.Background(), distCfg(3, nil), classifier, campaignSeed, interp.EngineVM)
		distReport = rep
	}()

	// Consumer 3: direct Sample traffic on the same store — every returned
	// sample must be bit-identical to the uncached reference.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				s, err := shared.Sample(context.Background(), benchSrcs, benchSpec)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(float64(s.Package)) != math.Float64bits(float64(benchRef.Package)) {
					t.Error("concurrent Sample diverged from uncached reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if schedErr != nil {
		t.Fatal(schedErr)
	}
	if distErr != nil {
		t.Fatal(distErr)
	}

	if got := core.CorpusView(schedReport); got != baseView {
		t.Errorf("sched AnalyzeAll view diverged from disabled-cache baseline:\n%s\n---\n%s", got, baseView)
	}
	// Joule bits per file: a hit must not move a single charge.
	for i, fa := range schedReport.Files {
		ref := baseline.Files[i]
		if fa.Path != ref.Path {
			t.Fatalf("file order diverged: %s vs %s", fa.Path, ref.Path)
		}
		if math.Float64bits(float64(fa.Report.Baseline.Package)) != math.Float64bits(float64(ref.Report.Baseline.Package)) {
			t.Errorf("%s: baseline joule bits diverged under the shared store", fa.Path)
		}
	}
	// The dist reconstruction carries the view-relevant subset only.
	if got := core.CorpusView(distReport); got != baseView {
		t.Errorf("dist AnalyzeCorpus view diverged from disabled-cache baseline:\n%s\n---\n%s", got, baseView)
	}

	st := shared.Stats()
	if st.Misses == 0 {
		t.Error("shared store recorded no misses — nothing was built?")
	}
	if st.Hits == 0 {
		t.Error("shared store recorded no hits — consumers did not share artifacts")
	}
	if st.Entries > st.Capacity {
		t.Errorf("store over capacity: %d > %d", st.Entries, st.Capacity)
	}
	t.Logf("shared store after stress: %s", st)
}
