package energy

// DefaultCosts returns the calibrated cost table.
//
// Calibration targets are the component *ratios* the paper reports in
// Table I, all else follows from execution:
//
//   - modulus vs other integer arithmetic: "up to 1,620% more"
//     → OpModInt ≈ 17× OpArithInt
//   - static vs local variable access: "up to 17,700% more"
//     → OpStatic ≈ 178× OpLocal
//   - ternary vs if-then-else: "up to 37% more"
//     → OpTernary surcharge on top of the branch
//   - String.compareTo vs String.equals: "up to 33% more"
//     → per-char and setup costs in a ≈4:3 ratio
//   - 2-D column vs row traversal: "up to 793% more"
//     → cache-miss energy ≈ 100× hit energy; with 16 int elements per
//     64-byte line, row traversal misses 1/16 accesses while column
//     traversal misses nearly all, which yields the observed ratio
//   - int is the cheapest primitive; narrow types pay mask/extend work,
//     long pays double-width ALU, double costs more than float
//   - Integer is the cheapest wrapper because of the [-128,127] valueOf
//     cache (boxing into the cache avoids an allocation)
//   - scientific-notation literals evaluate slightly cheaper than long
//     plain-decimal literals
//
// Costs are in picojoules per *interpreted* operation — roughly nanojoule
// scale, which is realistic for a JVM-style interpreted bytecode op and makes
// the implied core power (total energy / modelled time) land near 9 W, so the
// 2 W uncore term leaves package energy ≈ 1.1× core energy as on the paper's
// laptop.
//
// The platform parameters model the paper's testbed, a 1.7 GHz Intel
// i5-3317U laptop: package energy = core energy + uncore static power ×
// modelled time, so package and core improvements diverge slightly
// (Table IV reports 14.46% vs 14.19% for Random Forest).
func DefaultCosts() CostTable {
	t := CostTable{
		CacheHit:          Cost{Picojoules: 2000, Cycles: 1},
		CacheMiss:         Cost{Picojoules: 200000, Cycles: 100},
		FrequencyHz:       1.7e9,
		UncoreWatts:       2.0,
		DRAMJoulesPerMiss: 20e-9,
	}
	set := func(op Op, pj, cycles float64) { t.Ops[op] = Cost{Picojoules: pj, Cycles: cycles} }

	set(OpArithInt, 10000, 1)
	set(OpArithNarrow, 14000, 1.4)
	set(OpArithLong, 16000, 1.6)
	set(OpArithFloat, 13000, 1.3)
	set(OpArithDouble, 18000, 1.8)
	set(OpDivInt, 120000, 12)
	set(OpModInt, 172000, 18) // ≈17.2× OpArithInt
	set(OpDivFP, 110000, 11)
	set(OpBranch, 4000, 0.6)
	set(OpTernary, 16000, 1.2) // surcharge beyond the branch itself
	set(OpLocal, 2000, 0.3)
	set(OpStatic, 356000, 30) // ≈178× OpLocal
	set(OpField, 6000, 0.8)
	set(OpArrayElem, 8000, 1)
	set(OpBoundsCheck, 2000, 0.3)
	set(OpCall, 24000, 3)
	set(OpAllocObject, 60000, 8)
	set(OpAllocArrayElem, 4000, 0.5)
	set(OpBoxCached, 8000, 1)
	set(OpBoxAlloc, 70000, 9)
	set(OpUnbox, 6000, 0.8)
	set(OpStrConcatChar, 10000, 1.2)
	set(OpSBAppendChar, 4000, 0.5)
	set(OpStrEqualsChar, 6000, 0.8)
	set(OpStrCompareToChar, 8000, 1.05)
	set(OpStrSetup, 14000, 2)
	set(OpArraycopyElem, 3000, 0.35)
	set(OpConstDecimal, 3000, 0.4)
	set(OpConstSci, 2000, 0.3)
	set(OpThrow, 600000, 60)
	set(OpCatch, 60000, 8)
	set(OpTryEnter, 3000, 0.4)
	return t
}
