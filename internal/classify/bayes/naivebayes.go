// Package bayes implements the probabilistic classifiers: NaiveBayes with
// Gaussian likelihoods for numeric attributes and Laplace-smoothed
// multinomials for nominal ones, matching WEKA's default NaiveBayes.
package bayes

import (
	"fmt"
	"math"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// NaiveBayes is the classic conditional-independence classifier.
type NaiveBayes struct {
	opts classify.Options

	attrs    []*dataset.Attribute
	classIdx int
	nc       int
	priors   []float64     // log priors
	nomLog   [][][]float64 // [attr][class][value] log P(v|c); nil for numeric
	mean     [][]float64   // [attr][class]
	std      [][]float64
}

// New builds a NaiveBayes.
func New(opts classify.Options) *NaiveBayes { return &NaiveBayes{opts: opts} }

// Name implements Classifier.
func (c *NaiveBayes) Name() string { return "NaiveBayes" }

// minStd keeps Gaussian likelihoods finite on constant columns, as WEKA's
// precision default does.
const minStd = 1e-3

// Train implements Classifier.
func (c *NaiveBayes) Train(d *dataset.Dataset) error {
	if d.NumInstances() == 0 {
		return fmt.Errorf("naivebayes: empty training set")
	}
	c.attrs = d.Attrs
	c.classIdx = d.ClassIdx
	c.nc = d.NumClasses()
	counts := d.ClassCounts()
	n := float64(d.NumInstances())
	c.priors = make([]float64, c.nc)
	for k, cnt := range counts {
		c.priors[k] = math.Log((float64(cnt) + 1) / (n + float64(c.nc)))
	}
	c.nomLog = make([][][]float64, len(d.Attrs))
	c.mean = make([][]float64, len(d.Attrs))
	c.std = make([][]float64, len(d.Attrs))
	for j, a := range d.Attrs {
		if j == d.ClassIdx {
			continue
		}
		if a.Kind == dataset.Nominal {
			table := make([][]float64, c.nc)
			for k := range table {
				table[k] = make([]float64, a.NumValues())
			}
			for i, row := range d.X {
				if math.IsNaN(row[j]) {
					continue
				}
				table[d.Class(i)][int(row[j])]++
			}
			for k := range table {
				total := 0.0
				for _, v := range table[k] {
					total += v
				}
				for v := range table[k] {
					// Laplace smoothing.
					table[k][v] = math.Log((table[k][v] + 1) / (total + float64(a.NumValues())))
				}
			}
			c.nomLog[j] = table
			continue
		}
		c.mean[j] = make([]float64, c.nc)
		c.std[j] = make([]float64, c.nc)
		for k := 0; k < c.nc; k++ {
			m, s, cnt := d.NumericStats(j, k)
			if cnt == 0 || s < minStd {
				s = minStd
			}
			c.mean[j][k], c.std[j][k] = m, s
		}
	}
	return nil
}

// Predict implements Classifier.
func (c *NaiveBayes) Predict(row []float64) int {
	fp := c.opts.FP
	scores := make([]float64, c.nc)
	copy(scores, c.priors)
	for j, a := range c.attrs {
		if j == c.classIdx || math.IsNaN(row[j]) {
			continue
		}
		if a.Kind == dataset.Nominal {
			v := int(row[j])
			if v < 0 || v >= a.NumValues() {
				continue
			}
			for k := 0; k < c.nc; k++ {
				scores[k] = fp.R(scores[k] + c.nomLog[j][k][v])
			}
			continue
		}
		for k := 0; k < c.nc; k++ {
			m, s := c.mean[j][k], c.std[j][k]
			z := (row[j] - m) / s
			logp := fp.R(-0.5*z*z - math.Log(s) - 0.5*math.Log(2*math.Pi))
			scores[k] = fp.R(scores[k] + logp)
		}
	}
	return classify.ArgMax(scores)
}
