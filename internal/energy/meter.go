package energy

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Meter accumulates energy, cycles and memory behaviour for one modelled
// execution. It is the single source of truth the simulated RAPL registers
// read from.
//
// A Meter is not safe for concurrent use; the interpreter that drives it is
// single-threaded, as the JVM thread the paper instruments is.
type Meter struct {
	costs CostTable
	cache *Cache

	cycles     float64
	coreJ      Joules // PP0 (core) domain
	dramJ      Joules // DRAM domain
	opCounts   [NumOps]uint64
	heapCursor uint64 // bump allocator for synthetic addresses
}

// NewMeter builds a meter over the given cost table and the default cache
// geometry. It panics if the table fails validation, since an unpopulated
// table is a programming error.
func NewMeter(costs CostTable) *Meter {
	return NewMeterCache(costs, DefaultCacheConfig())
}

// NewMeterCache builds a meter with an explicit cache geometry.
func NewMeterCache(costs CostTable, cache CacheConfig) *Meter {
	if err := costs.Validate(); err != nil {
		panic(err)
	}
	return &Meter{
		costs:      costs,
		cache:      NewCache(cache),
		heapCursor: 1 << 20, // keep address 0 unused
	}
}

// Costs returns the meter's cost table.
func (m *Meter) Costs() CostTable { return m.costs }

// Step charges n occurrences of op.
func (m *Meter) Step(op Op, n int) {
	if n <= 0 {
		return
	}
	c := m.costs.Ops[op]
	f := float64(n)
	m.coreJ += Picojoules(c.Picojoules * f)
	m.cycles += c.Cycles * f
	m.opCounts[op] += uint64(n)
}

// Charge is one recorded Step call: op charged n times. Pre-aggregation
// passes record them so the meter can replay an instruction run's exact
// charge sequence later.
type Charge struct {
	Op Op
	N  int32
}

// StepList replays an ordered charge list, one Step call per entry. Entries
// are charged individually and in order — never summed across entries —
// because Joules accumulate in float64 and float addition is not
// associative: bit-exactness with the unaggregated execution requires the
// identical call sequence.
func (m *Meter) StepList(charges []Charge) {
	for i := range charges {
		m.Step(charges[i].Op, int(charges[i].N))
	}
}

// Access routes a memory access of size bytes at addr through the cache model
// and charges the hit/miss costs.
func (m *Meter) Access(addr uint64, size int) {
	lines, missed := m.cache.Access(addr, size)
	hits := lines - missed
	if hits > 0 {
		m.coreJ += Picojoules(m.costs.CacheHit.Picojoules * float64(hits))
		m.cycles += m.costs.CacheHit.Cycles * float64(hits)
	}
	if missed > 0 {
		m.coreJ += Picojoules(m.costs.CacheMiss.Picojoules * float64(missed))
		m.cycles += m.costs.CacheMiss.Cycles * float64(missed)
		m.dramJ += Joules(m.costs.DRAMJoulesPerMiss * float64(missed))
	}
}

// Alloc reserves size bytes of synthetic address space, 8-byte aligned, and
// returns the base address. Objects and arrays created by the interpreter
// live at these addresses so the cache model sees realistic layouts.
func (m *Meter) Alloc(size int) uint64 {
	if size < 0 {
		size = 0
	}
	base := m.heapCursor
	m.heapCursor += (uint64(size) + 7) &^ 7
	return base
}

// Sample is a point-in-time reading of the meter, in the same domain split
// RAPL exposes: package, core (PP0) and DRAM.
type Sample struct {
	Cycles  float64
	Elapsed time.Duration
	Core    Joules
	Package Joules
	DRAM    Joules
}

// Snapshot computes the current sample. Package energy is core energy plus
// the uncore static power integrated over modelled time.
func (m *Meter) Snapshot() Sample {
	secs := m.cycles / m.costs.FrequencyHz
	return Sample{
		Cycles:  m.cycles,
		Elapsed: time.Duration(secs * float64(time.Second)),
		Core:    m.coreJ,
		Package: m.coreJ + Joules(m.costs.UncoreWatts*secs),
		DRAM:    m.dramJ,
	}
}

// Sub returns the per-domain difference b − a. It is the measurement a pair
// of RAPL reads around a region of code yields.
func (b Sample) Sub(a Sample) Sample {
	return Sample{
		Cycles:  b.Cycles - a.Cycles,
		Elapsed: b.Elapsed - a.Elapsed,
		Core:    b.Core - a.Core,
		Package: b.Package - a.Package,
		DRAM:    b.DRAM - a.DRAM,
	}
}

// OpCount reports how many times op has been charged.
func (m *Meter) OpCount(op Op) uint64 { return m.opCounts[op] }

// CacheStats reports cumulative cache hits and misses.
func (m *Meter) CacheStats() (hits, misses uint64) { return m.cache.Hits(), m.cache.Misses() }

// Reset zeroes all accumulators, invalidates the cache and resets the
// synthetic heap.
func (m *Meter) Reset() {
	m.cycles = 0
	m.coreJ = 0
	m.dramJ = 0
	m.opCounts = [NumOps]uint64{}
	m.cache.Reset()
	m.heapCursor = 1 << 20
}

// Report renders a human-readable op-count breakdown, most frequent first.
// It is used by the profiler's verbose view.
func (m *Meter) Report() string {
	type row struct {
		op Op
		n  uint64
	}
	rows := make([]row, 0, NumOps)
	for op := 0; op < NumOps; op++ {
		if m.opCounts[op] > 0 {
			rows = append(rows, row{Op(op), m.opCounts[op]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	var sb strings.Builder
	s := m.Snapshot()
	fmt.Fprintf(&sb, "package=%v core=%v dram=%v cycles=%.0f time=%v\n",
		s.Package, s.Core, s.DRAM, s.Cycles, s.Elapsed)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s %12d\n", r.op, r.n)
	}
	return sb.String()
}
