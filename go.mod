module jepo

go 1.22
