package eval

import (
	"math"
	"strings"
	"testing"

	"jepo/internal/airlines"
	"jepo/internal/classify"
	"jepo/internal/classify/bayes"
	"jepo/internal/classify/lazy"
	"jepo/internal/classify/linear"
	"jepo/internal/classify/svm"
	"jepo/internal/classify/tree"
	"jepo/internal/dataset"
)

// factories enumerates all ten paper classifiers with fast test settings.
func factories(opts classify.Options) map[string]Factory {
	return map[string]Factory{
		"J48":          func() classify.Classifier { return tree.NewJ48(opts) },
		"RandomTree":   func() classify.Classifier { return tree.NewRandomTree(opts) },
		"RandomForest": func() classify.Classifier { return tree.NewRandomForest(opts, 10) },
		"REPTree":      func() classify.Classifier { return tree.NewREPTree(opts) },
		"NaiveBayes":   func() classify.Classifier { return bayes.New(opts) },
		"Logistic": func() classify.Classifier {
			c := linear.NewLogistic(opts)
			c.Epochs = 15
			return c
		},
		"SMO": func() classify.Classifier {
			c := svm.New(opts)
			c.MaxPasses = 2
			return c
		},
		"SGD": func() classify.Classifier {
			c := linear.NewSGD(opts)
			c.Epochs = 15
			return c
		},
		"KStar": func() classify.Classifier { return lazy.NewKStar(opts) },
		"IBk":   func() classify.Classifier { return lazy.NewIBk(opts, 3) },
	}
}

// separable builds a trivially separable two-class dataset: class is 1 when
// x > 5, with a correlated nominal attribute.
func separable(n int) *dataset.Dataset {
	d := dataset.New("sep", 2,
		dataset.NewNumeric("x"),
		dataset.NewNominal("hint", "lo", "hi"),
		dataset.NewNominal("class", "neg", "pos"),
	)
	r := classify.NewRNG(11)
	for i := 0; i < n; i++ {
		x := 10 * r.Float64()
		cls := 0.0
		hint := 0.0
		if x > 5 {
			cls, hint = 1, 1
		}
		d.Add([]float64{x, hint, cls})
	}
	return d
}

func TestAllClassifiersLearnSeparableData(t *testing.T) {
	d := separable(300)
	for name, mk := range factories(classify.Options{Seed: 3}) {
		res, err := CrossValidate(d, 5, 7, mk)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Accuracy() < 95 {
			t.Errorf("%s accuracy on separable data = %.2f%%, want ≥95%%", name, res.Accuracy())
		}
		if res.Kappa() < 0.85 {
			t.Errorf("%s kappa = %.3f, want high", name, res.Kappa())
		}
	}
}

func TestAllClassifiersBeatMajorityOnAirlines(t *testing.T) {
	d := airlines.Generate(1200, 42)
	maj := 100 * float64(d.ClassCounts()[d.MajorityClass()]) / float64(d.NumInstances())
	for name, mk := range factories(classify.Options{Seed: 5}) {
		res, err := CrossValidate(d, 5, 9, mk)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Accuracy() <= maj {
			t.Errorf("%s airlines accuracy = %.2f%%, majority = %.2f%% — no learning",
				name, res.Accuracy(), maj)
		}
		t.Logf("%-12s airlines accuracy = %.2f%% (majority %.2f%%)", name, res.Accuracy(), maj)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	d := airlines.Generate(600, 42)
	for name, mk := range factories(classify.Options{Seed: 5}) {
		a, err := CrossValidate(d, 4, 9, mk)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CrossValidate(d, 4, 9, mk)
		if err != nil {
			t.Fatal(err)
		}
		if a.Accuracy() != b.Accuracy() {
			t.Errorf("%s not deterministic: %.4f vs %.4f", name, a.Accuracy(), b.Accuracy())
		}
	}
}

// Single-precision mode must stay close to double precision — the paper's
// Table IV reports accuracy drops of at most 0.48%… small but sometimes
// non-zero.
func TestSinglePrecisionDropIsSmall(t *testing.T) {
	d := airlines.Generate(1200, 42)
	for name := range factories(classify.Options{}) {
		dbl, err := CrossValidate(d, 4, 9, factories(classify.Options{Seed: 5, FP: classify.Double})[name])
		if err != nil {
			t.Fatal(err)
		}
		sgl, err := CrossValidate(d, 4, 9, factories(classify.Options{Seed: 5, FP: classify.Single})[name])
		if err != nil {
			t.Fatal(err)
		}
		drop := dbl.Accuracy() - sgl.Accuracy()
		if math.Abs(drop) > 3.0 {
			t.Errorf("%s precision drop = %.3f%%, want small", name, drop)
		}
		t.Logf("%-12s double=%.2f%% single=%.2f%% drop=%+.3f%%", name, dbl.Accuracy(), sgl.Accuracy(), drop)
	}
}

func TestHoldout(t *testing.T) {
	d := separable(400)
	folds, err := d.StratifiedFolds(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test := d.TrainTest(folds, 0)
	res, err := Holdout(train, test, func() classify.Classifier {
		return tree.NewJ48(classify.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != test.NumInstances() {
		t.Errorf("holdout total = %d", res.Total)
	}
	if res.Accuracy() < 95 {
		t.Errorf("holdout accuracy = %.2f%%", res.Accuracy())
	}
	if !strings.Contains(res.String(), "Correctly Classified") {
		t.Error("summary rendering broken")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := separable(10)
	if _, err := CrossValidate(d, 100, 1, func() classify.Classifier {
		return bayes.New(classify.Options{})
	}); err == nil {
		t.Error("k > n accepted")
	}
	empty := d.Empty()
	if _, err := Holdout(empty, d, func() classify.Classifier {
		return bayes.New(classify.Options{})
	}); err == nil {
		t.Error("empty training set accepted")
	}
}

// TestPerFoldFiniteAtMinimumFoldSize drives CrossValidate at the k == n
// extreme where every test fold holds exactly one instance, the closest the
// public API gets to the degenerate empty-fold case PerFold guards against:
// every per-fold accuracy must be a finite 0 or 100, never NaN.
func TestPerFoldFiniteAtMinimumFoldSize(t *testing.T) {
	d := separable(8)
	res, err := CrossValidate(d, 8, 5, func() classify.Classifier {
		return bayes.New(classify.Options{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerFold) != 8 {
		t.Fatalf("got %d folds, want 8", len(res.PerFold))
	}
	for f, acc := range res.PerFold {
		if math.IsNaN(acc) || math.IsInf(acc, 0) {
			t.Errorf("fold %d accuracy is %v, want finite", f, acc)
		}
		if acc != 0 && acc != 100 {
			t.Errorf("fold %d accuracy %v, want 0 or 100 for 1-instance folds", f, acc)
		}
	}
}

func TestConfusionMatrixConsistent(t *testing.T) {
	d := separable(200)
	res, err := CrossValidate(d, 4, 3, func() classify.Classifier {
		return lazy.NewIBk(classify.Options{}, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, diag := 0, 0
	for i := range res.Confusion {
		for j := range res.Confusion[i] {
			sum += res.Confusion[i][j]
			if i == j {
				diag += res.Confusion[i][j]
			}
		}
	}
	if sum != res.Total || diag != res.Correct {
		t.Errorf("confusion sum=%d diag=%d vs total=%d correct=%d", sum, diag, res.Total, res.Correct)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	r := &Result{
		Correct: 7,
		Total:   10,
		Confusion: [][]int{
			{4, 1}, // actual 0: 4 right, 1 predicted as 1
			{2, 3}, // actual 1: 2 predicted as 0, 3 right
		},
	}
	p, rec, f1 := r.PrecisionRecallF1(0)
	if math.Abs(p-4.0/6.0) > 1e-12 {
		t.Errorf("precision = %v, want 4/6", p)
	}
	if math.Abs(rec-4.0/5.0) > 1e-12 {
		t.Errorf("recall = %v, want 4/5", rec)
	}
	wantF1 := 2 * (4.0 / 6.0) * (4.0 / 5.0) / (4.0/6.0 + 4.0/5.0)
	if math.Abs(f1-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", f1, wantF1)
	}
	// Out-of-range class and degenerate rows are safe.
	if p, _, _ := r.PrecisionRecallF1(9); p != 0 {
		t.Error("out-of-range class must yield zeros")
	}
	zero := &Result{Confusion: [][]int{{0, 0}, {0, 0}}}
	if p, rec, f1 := zero.PrecisionRecallF1(0); p != 0 || rec != 0 || f1 != 0 {
		t.Error("degenerate confusion must yield zeros")
	}
	out := r.DetailedByClass([]string{"no", "yes"})
	if !strings.Contains(out, "no") || !strings.Contains(out, "Precision") {
		t.Errorf("detailed block malformed:\n%s", out)
	}
}
