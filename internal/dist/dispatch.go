// The dispatcher: assignment, deadlines, retries, reassignment,
// quarantine and index-ordered commit. Structurally it is sched.MapCommit
// lifted across a process boundary — per-task seeds from the same
// splitmix64 derivation, commit on the caller's goroutine in index order,
// first error by lowest index — with rapl.Resilient's degradation ladder
// applied to nodes instead of reads.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"jepo/internal/rapl"
	"jepo/internal/sched"
)

// Config parameterizes a campaign run.
type Config struct {
	// Workers is the node count. <= 1 (or a single task) runs the campaign
	// inline on the caller through the same runner and JSON path, which is
	// also the degenerate proof of byte-identity.
	Workers int
	// Seed is the campaign seed; task i runs with sched.TaskSeed(Seed, i).
	Seed uint64
	// Retries bounds extra attempts after a *task* error (default 0).
	// Node faults — death, deadline, corrupt reply — do not consume task
	// retries; the task is reassigned and the node pays instead.
	Retries int
	// Deadline is the longest silence tolerated from a node with a task in
	// flight; heartbeats re-arm it. 0 disables deadline enforcement.
	Deadline time.Duration
	// Heartbeat is the beat interval workers are asked to hold while a
	// task runs (default 250ms; should be several times below Deadline).
	Heartbeat time.Duration
	// Strikes is how many corrupt replies quarantine a node (default 3).
	Strikes int
	// Checkpoint, when set, is the dispatch-ledger path: completed tasks
	// persist there (atomic write) and a rerun resumes from them.
	Checkpoint string
	// Spawn mints worker connections (default SelfSpawner).
	Spawn Spawner
	// Plan, when set, wraps the transport in the chaos harness.
	Plan *FaultPlan
	// OnEvent receives human-readable fault-path events (stderr material;
	// never part of determinism-pinned stdout).
	OnEvent func(string)
}

func (c Config) strikes() int {
	if c.Strikes > 0 {
		return c.Strikes
	}
	return 3
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return 250 * time.Millisecond
}

// NodeHealth is one node's service record for the campaign report.
type NodeHealth struct {
	ID          int
	Done        int // results delivered
	TaskErrors  int // task-error replies (the task's fault)
	Strikes     int // corrupt-reply strikes
	Quarantined bool
	Reason      string // why the node left service, when it did
	// Measurement aggregates the rapl degradation tallies the node's tasks
	// reported over the wire.
	Measurement rapl.Health
}

// Report is the campaign's fault-path ledger — the node-level analog of
// sched.Telemetry plus rapl.Health. Timing-dependent; print to stderr.
type Report struct {
	Workers     int // nodes requested
	Tasks       int
	Replayed    int // tasks restored from the checkpoint ledger
	Assigned    int // task messages sent
	Retried     int // task-error retries
	Reassigned  int // node-fault requeues
	Timeouts    int // deadlines fired
	Corrupt     int // corrupt or out-of-protocol replies
	Deaths      int // connections lost
	Quarantines int // nodes removed from service
	Wall        time.Duration
	Nodes       []NodeHealth
	// Measurement is the campaign-wide rapl tally, merged in commit order
	// so it is deterministic at any worker count.
	Measurement rapl.Health
}

// String renders the one-line summary the CLIs print to stderr. The
// quarantined count is the headline robustness figure: how many nodes the
// campaign survived losing.
func (r Report) String() string {
	return fmt.Sprintf("dist: workers=%d tasks=%d replayed=%d assigned=%d retried=%d reassigned=%d timeouts=%d corrupt=%d deaths=%d quarantined=%d wall=%v",
		r.Workers, r.Tasks, r.Replayed, r.Assigned, r.Retried, r.Reassigned,
		r.Timeouts, r.Corrupt, r.Deaths, r.Quarantines, r.Wall.Round(time.Millisecond))
}

// NodeSummary renders one line per node: its service record and the
// measurement health its tasks reported.
func (r Report) NodeSummary() string {
	var sb strings.Builder
	for _, n := range r.Nodes {
		fmt.Fprintf(&sb, "dist: node %d: done=%d taskerrs=%d strikes=%d", n.ID, n.Done, n.TaskErrors, n.Strikes)
		if n.Quarantined {
			fmt.Fprintf(&sb, " QUARANTINED (%s)", n.Reason)
		}
		if n.Measurement != (rapl.Health{}) {
			fmt.Fprintf(&sb, " measurement(%s)", n.Measurement)
		}
		sb.WriteByte('\n')
	}
	return strings.TrimRight(sb.String(), "\n")
}

// ErrNoWorkers reports a campaign abandoned because every node was lost
// with tasks still unfinished. It is the only node-caused failure mode;
// anything less degrades and continues.
var ErrNoWorkers = errors.New("dist: all workers gone")

// runState is the merge ledger: per-task results, the commit cursor, and
// first-error tracking, all index-ordered.
type runState struct {
	results  []json.RawMessage
	healths  []rapl.Health
	errs     []error
	done     []bool
	failures []int
	cursor   int
	left     int
}

func newRunState(n int) *runState {
	return &runState{
		results:  make([]json.RawMessage, n),
		healths:  make([]rapl.Health, n),
		errs:     make([]error, n),
		done:     make([]bool, n),
		failures: make([]int, n),
		left:     n,
	}
}

func (s *runState) finish(i int, res json.RawMessage, h rapl.Health) {
	s.results[i] = res
	s.healths[i] = h
	s.done[i] = true
	s.left--
}

func (s *runState) fail(i int, err error) {
	s.errs[i] = err
	s.done[i] = true
	s.left--
}

// advance commits every newly completed task at the cursor, in index
// order, on the caller's goroutine — the same commit discipline as
// sched.MapCommit, so downstream merges are ordering-blind.
func (s *runState) advance(seed uint64, rep *Report, commit func(Task, json.RawMessage)) {
	for s.cursor < len(s.done) && s.done[s.cursor] {
		i := s.cursor
		if s.errs[i] == nil {
			rep.Measurement = rep.Measurement.Add(s.healths[i])
			if commit != nil {
				commit(Task{Index: i, Seed: sched.TaskSeed(seed, i)}, s.results[i])
			}
		}
		s.cursor++
	}
}

// firstErr returns the lowest-index task error, mirroring the pool.
func (s *runState) firstErr() error {
	for _, err := range s.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes one campaign: n tasks of the given kind with the given
// params, committed in index order. It returns the fault-path report and
// the first task error (by index), if any. The commit callback receives
// validated JSON; params must marshal to JSON.
//
// Cancelling ctx stops the campaign between commits: no new assignments go
// out, live nodes are shut down, the committed set stays an exact index
// prefix, the checkpoint ledger (if any) is saved so a rerun resumes from
// it, and ctx.Err() is returned.
func Run(ctx context.Context, cfg Config, reg *Registry, kind string, params any, n int, commit func(Task, json.RawMessage)) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	rep := Report{Workers: cfg.Workers, Tasks: n}
	raw, err := json.Marshal(params)
	if err != nil {
		return rep, fmt.Errorf("dist: %s params: %w", kind, err)
	}
	st := newRunState(n)

	var led *ledgerState
	if cfg.Checkpoint != "" {
		led = openLedger(cfg.Checkpoint, kind, cfg.Seed, n, raw, cfg.OnEvent)
		led.replay(func(i int, e ledgerEntry) {
			st.finish(i, e.Result, e.Health)
			rep.Replayed++
		})
	}
	st.advance(cfg.Seed, &rep, commit)

	workers := cfg.Workers
	if workers > st.left {
		workers = st.left
	}
	rep.Workers = cfg.Workers
	if workers <= 1 {
		err := runInline(ctx, cfg, reg, kind, raw, st, led, &rep, commit)
		rep.Wall = time.Since(start)
		return rep, err
	}
	err = dispatch(ctx, cfg, reg, kind, raw, workers, st, led, &rep, commit)
	rep.Wall = time.Since(start)
	return rep, err
}

// runInline is the sequential degeneration: same runner, same JSON
// round-trip, same retry bound, same ledger — just no processes. Byte
// identity with the dispatched path follows because both paths feed
// identical result bytes to the same ordered commit.
func runInline(ctx context.Context, cfg Config, reg *Registry, kind string, raw json.RawMessage, st *runState, led *ledgerState, rep *Report, commit func(Task, json.RawMessage)) error {
	fn, err := reg.runner(kind)
	if err != nil {
		return err
	}
	for i := range st.done {
		if st.done[i] {
			continue
		}
		if ctx.Err() != nil {
			if led != nil {
				led.save()
			}
			return ctx.Err()
		}
		task := Task{Index: i, Seed: sched.TaskSeed(cfg.Seed, i)}
		var out Output
		var rerr error
		for {
			out, rerr = runSafe(fn, task, raw)
			if rerr == nil || st.failures[i] >= cfg.Retries {
				break
			}
			st.failures[i]++
			rep.Retried++
		}
		rep.Assigned++
		if rerr != nil {
			st.fail(i, rerr)
		} else {
			st.finish(i, out.Result, out.Health)
			if led != nil {
				led.add(i, out.Result, out.Health)
				led.maybeSave()
			}
		}
		st.advance(cfg.Seed, rep, commit)
	}
	if led != nil {
		led.save()
	}
	return st.firstErr()
}

// node is one worker's dispatcher-side record.
type node struct {
	id       int
	conn     Conn
	gone     bool
	inflight int // task index, -1 when idle
	lastBeat time.Time
	hp       NodeHealth
}

// event is one reader-goroutine delivery.
type event struct {
	node int
	msg  *Message
	err  error
}

// retryEntry is a task waiting for (re)assignment.
type retryEntry struct {
	index     int
	lastNode  int
	notBefore time.Time
}

// dispatch runs the event loop over live worker connections.
func dispatch(ctx context.Context, cfg Config, reg *Registry, kind string, raw json.RawMessage, workers int, st *runState, led *ledgerState, rep *Report, commit func(Task, json.RawMessage)) error {
	spawn := cfg.Spawn
	if spawn == nil {
		spawn = SelfSpawner()
	}
	if cfg.Plan != nil {
		spawn = ChaosSpawner(spawn, cfg.Plan)
	}
	say := func(format string, args ...any) {
		if cfg.OnEvent != nil {
			cfg.OnEvent(fmt.Sprintf(format, args...))
		}
	}

	events := make(chan event, workers*8)
	var readers sync.WaitGroup
	nodes := make([]*node, workers)
	live := 0
	for id := range nodes {
		nd := &node{id: id, inflight: -1, hp: NodeHealth{ID: id}}
		nodes[id] = nd
		conn, err := spawn(id)
		if err != nil {
			nd.gone = true
			nd.hp.Quarantined = true
			nd.hp.Reason = "spawn: " + err.Error()
			rep.Deaths++
			rep.Quarantines++
			say("dist: node %d failed to spawn: %v", id, err)
			continue
		}
		nd.conn = conn
		live++
		readers.Add(1)
		go func(id int, c Conn) {
			defer readers.Done()
			for {
				m, err := c.Recv()
				events <- event{node: id, msg: m, err: err}
				if err != nil {
					return
				}
			}
		}(id, conn)
	}
	defer func() {
		for _, nd := range nodes {
			if nd.conn == nil {
				continue
			}
			if !nd.gone {
				nd.conn.Send(&Message{Type: MsgShutdown})
				nd.conn.Close()
			}
		}
		// Unblock any reader still trying to deliver, then let the drain
		// goroutine die with the channel once every reader has returned.
		go func() {
			readers.Wait()
			close(events)
		}()
		go func() {
			for range events {
			}
		}()
		for i, nd := range nodes {
			rep.Nodes = append(rep.Nodes, nd.hp)
			rep.Nodes[i].ID = nd.id
		}
	}()

	var retryq []retryEntry
	nextFresh := 0
	requeue := func(i, lastNode int, after time.Duration) {
		retryq = append(retryq, retryEntry{index: i, lastNode: lastNode, notBefore: time.Now().Add(after)})
	}
	quarantine := func(nd *node, reason string, kill bool) {
		if nd.gone {
			return
		}
		nd.gone = true
		live--
		nd.hp.Quarantined = true
		nd.hp.Reason = reason
		rep.Quarantines++
		say("dist: node %d quarantined: %s", nd.id, reason)
		if nd.inflight >= 0 {
			rep.Reassigned++
			say("dist: task %d reassigned from node %d", nd.inflight, nd.id)
			requeue(nd.inflight, nd.id, 0)
			nd.inflight = -1
		}
		if kill && nd.conn != nil {
			c := nd.conn
			go c.Kill()
		}
	}
	// strike punishes a corrupt or out-of-protocol reply; enough strikes
	// quarantine the node, and its in-flight task (if any) is reassigned
	// either way without consuming the task's own retry budget.
	strike := func(nd *node, reason string) {
		rep.Corrupt++
		nd.hp.Strikes++
		if nd.hp.Strikes >= cfg.strikes() {
			quarantine(nd, reason, true)
		}
		if !nd.gone && nd.inflight >= 0 {
			rep.Reassigned++
			say("dist: task %d reassigned from node %d (%s)", nd.inflight, nd.id, reason)
			requeue(nd.inflight, nd.id, 0)
			nd.inflight = -1
		}
	}
	liveCount := func() int { return live }
	pick := func(nd *node) (int, bool) {
		now := time.Now()
		for qi, e := range retryq {
			if e.notBefore.After(now) {
				continue
			}
			// Prefer a different worker for a requeued task; only when
			// this node is the last one standing does it retry its own.
			if e.lastNode == nd.id && liveCount() > 1 {
				continue
			}
			retryq = append(retryq[:qi], retryq[qi+1:]...)
			return e.index, true
		}
		for nextFresh < len(st.done) && st.done[nextFresh] {
			nextFresh++
		}
		if nextFresh < len(st.done) {
			i := nextFresh
			nextFresh++
			return i, true
		}
		return 0, false
	}
	assign := func(nd *node) {
		i, ok := pick(nd)
		if !ok {
			return
		}
		m := &Message{
			Type:        MsgTask,
			Index:       i,
			Seed:        sched.TaskSeed(cfg.Seed, i),
			Kind:        kind,
			Params:      raw,
			HeartbeatMs: cfg.heartbeat().Milliseconds(),
		}
		if err := nd.conn.Send(m); err != nil {
			rep.Deaths++
			quarantine(nd, "send: "+err.Error(), true)
			rep.Reassigned++
			requeue(i, nd.id, 0)
			return
		}
		nd.inflight = i
		nd.lastBeat = time.Now()
		rep.Assigned++
	}

	// The poll tick serves two masters: deadline scans and waking the loop
	// when a backed-off retry becomes assignable.
	tick := 25 * time.Millisecond
	if cfg.Deadline > 0 {
		tick = cfg.Deadline / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		if tick > 250*time.Millisecond {
			tick = 250 * time.Millisecond
		}
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	for st.left > 0 {
		if ctx.Err() != nil {
			// Cancelled between commits: the deferred cleanup shuts the
			// nodes down, the committed set is already an exact prefix, and
			// the saved ledger makes a rerun resume instead of restart.
			if led != nil {
				led.save()
			}
			return ctx.Err()
		}
		if live == 0 {
			if led != nil {
				led.save()
			}
			return fmt.Errorf("%w: %d of %d tasks unfinished", ErrNoWorkers, st.left, len(st.done))
		}
		for _, nd := range nodes {
			if !nd.gone && nd.inflight < 0 {
				assign(nd)
			}
		}
		select {
		case ev := <-events:
			nd := nodes[ev.node]
			if nd.gone {
				// Stale traffic from a node already removed from service.
				continue
			}
			if ev.err != nil {
				rep.Deaths++
				quarantine(nd, "connection lost: "+ev.err.Error(), false)
				continue
			}
			m := ev.msg
			switch m.Type {
			case MsgHello:
				// Ready; the assignment loop covers it next pass.
			case MsgHeartbeat:
				if nd.inflight == m.Index {
					nd.lastBeat = time.Now()
				}
			case MsgResult:
				if nd.inflight != m.Index {
					strike(nd, "result for unassigned task")
					continue
				}
				if len(m.Result) == 0 || !json.Valid(m.Result) {
					strike(nd, "corrupt result payload")
					continue
				}
				i := m.Index
				var h rapl.Health
				if m.Health != nil {
					h = *m.Health
				}
				nd.inflight = -1
				nd.hp.Done++
				nd.hp.Measurement = nd.hp.Measurement.Add(h)
				st.finish(i, m.Result, h)
				if led != nil {
					led.add(i, m.Result, h)
					led.maybeSave()
				}
				st.advance(cfg.Seed, rep, commit)
			case MsgError:
				if nd.inflight != m.Index {
					strike(nd, "error for unassigned task")
					continue
				}
				i := m.Index
				nd.inflight = -1
				nd.hp.TaskErrors++
				st.failures[i]++
				if st.failures[i] > cfg.Retries {
					st.fail(i, errors.New(m.Err))
					st.advance(cfg.Seed, rep, commit)
				} else {
					rep.Retried++
					// Linear backoff, like rapl's retry ladder: the task
					// failed on its own terms, give the state a beat.
					requeue(i, nd.id, time.Duration(st.failures[i])*2*time.Millisecond)
				}
			default:
				strike(nd, fmt.Sprintf("unexpected %q message", m.Type))
			}
		case <-ctx.Done():
			// Loop back to the cancellation check at the top.
		case <-ticker.C:
			if cfg.Deadline <= 0 {
				continue
			}
			now := time.Now()
			for _, nd := range nodes {
				if !nd.gone && nd.inflight >= 0 && now.Sub(nd.lastBeat) > cfg.Deadline {
					rep.Timeouts++
					quarantine(nd, fmt.Sprintf("task %d silent past deadline %v", nd.inflight, cfg.Deadline), true)
				}
			}
		}
	}
	if led != nil {
		led.save()
	}
	return st.firstErr()
}

// Map is the typed campaign surface: params of type P in, ordered results
// of type R out, commit in index order. It is to Run what sched.Map is to
// the raw pool.
func Map[P, R any](ctx context.Context, cfg Config, reg *Registry, kind string, params P, n int, commit func(Task, R)) ([]R, Report, error) {
	out := make([]R, n)
	var decodeErr error
	rep, err := Run(ctx, cfg, reg, kind, params, n, func(t Task, raw json.RawMessage) {
		var r R
		if uerr := json.Unmarshal(raw, &r); uerr != nil {
			if decodeErr == nil {
				decodeErr = fmt.Errorf("dist: %s result %d: %w", kind, t.Index, uerr)
			}
			return
		}
		out[t.Index] = r
		if commit != nil {
			commit(t, r)
		}
	})
	if err == nil {
		err = decodeErr
	}
	return out, rep, err
}
