# Standard entry points for the reproduction repo.

.PHONY: build test check serve-check bench-interp bench-passes bench-vm bench-meter bench-sched bench-dist bench-cache bench-serve enginediff faultmatrix scheddiff distdiff

build:
	go build ./...

test:
	go test ./...

# Formatting, vet and the race-enabled test suite in one gate.
check:
	sh scripts/check.sh

# Daemon byte-identity gate: start jepod, drive a scripted session analyze
# and a Table II regeneration over HTTP, byte-diff both against CLI stdout,
# then SIGTERM the daemon and require a clean drain.
serve-check:
	sh scripts/serve_check.sh

# Interpreter benchmark trajectory: wall-clock ns/op + simulated µJ/op for
# the Table I corpus, written to BENCH_interp.json.
bench-interp:
	go run ./cmd/jperf bench -o BENCH_interp.json

# Pass-engine benchmark: one shared analysis traversal vs the seed's
# per-rule traversals over the Table I corpus, written to BENCH_passes.json.
bench-passes:
	go run ./cmd/jperf bench -passes -o BENCH_passes.json

# Engine comparison benchmark: tree-walker vs bytecode VM wall clock over
# the Table I corpus plus the probe-opcode overhead, written to BENCH_vm.json.
bench-vm:
	go run ./cmd/jperf bench -vm -o BENCH_vm.json

# Metering-floor benchmark: full VM with the metering fast path on vs off,
# against a meter-only replay of each row's exact charge volume — the Amdahl
# floor the energy model imposes — written to BENCH_meter.json. Every row
# asserts the on/off joule bits are identical.
bench-meter:
	go run ./cmd/jperf bench -meter -o BENCH_meter.json

# Differential engine fuzz: the bytecode VM and the tree-walker must agree
# bit-for-bit (results, output, op counts, Joules) on the Table I corpus and
# seeded random programs.
enginediff:
	go test -tags enginediff -run EngineDiff ./internal/minijava/interp

# Seeded fault-injection fuzz over the measurement layer: random fault mixes
# against the resilient source, the sampler unwrap, and profiled runs.
faultmatrix:
	go test -tags faultmatrix -run FaultMatrix ./internal/rapl/... ./internal/profile/...

# Differential fuzz for the deterministic worker pool: random task counts,
# worker counts and fault plans must produce identical merged results and
# Health ledgers at any parallelism.
scheddiff:
	go test -tags scheddiff -run SchedDifferentialFuzz ./internal/sched

# Worker-pool benchmark: sequential vs -jobs {2,4,8} for a reduced Table IV
# and a corpus-wide analysis, with in-bench bit-identity assertions, written
# to BENCH_sched.json.
bench-sched:
	go run ./cmd/jperf bench -sched -o BENCH_sched.json

# Differential fuzz for the fault-tolerant process dispatcher: random chaos
# plans (kills, hangs, slow-walks, corrupt replies) must merge to results,
# commit ledgers and Health tallies bit-identical to the inline run.
distdiff:
	go test -tags distdiff -run DistDifferentialFuzz ./internal/dist

# Dispatcher benchmark: inline vs -workers {2,4} worker processes for a
# reduced Table IV, a corpus analysis and a cross-validation, with in-bench
# bit-identity assertions, written to BENCH_dist.json.
bench-dist:
	go run ./cmd/jperf bench -dist -o BENCH_dist.json

# Artifact-cache benchmark: the full corpus analysis and a reduced Table IV,
# each run nocache vs cold store vs warm store with in-bench bit-identity
# assertions and hit-rate tallies, written to BENCH_cache.json.
bench-cache:
	go run ./cmd/jperf bench -cache -o BENCH_cache.json

# Session-daemon benchmark: an in-process jepod handling analyze requests
# over HTTP at 1/4/8 concurrent sessions, cold vs warm store, with in-bench
# byte-identity assertions, written to BENCH_serve.json.
bench-serve:
	go run ./cmd/jperf bench -serve -o BENCH_serve.json
