package linear

import (
	"testing"

	"jepo/internal/classify"
	"jepo/internal/dataset"
)

// linearly separable: y = 1 iff 2x − z > 0, plus a nominal hint.
func separable(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("lin", 3,
		dataset.NewNumeric("x"),
		dataset.NewNumeric("z"),
		dataset.NewNominal("hint", "a", "b"),
		dataset.NewNominal("y", "neg", "pos"),
	)
	r := classify.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := r.Float64()*10 - 5
		z := r.Float64()*10 - 5
		y, hint := 0.0, 0.0
		if 2*x-z > 0 {
			y, hint = 1, 1
		}
		d.Add([]float64{x, z, hint, y})
	}
	return d
}

func acc(c classify.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Class(i) {
			correct++
		}
	}
	return 100 * float64(correct) / float64(d.NumInstances())
}

func TestLogisticSeparable(t *testing.T) {
	train := separable(400, 1)
	test := separable(200, 2)
	c := NewLogistic(classify.Options{Seed: 3})
	if err := c.Train(train); err != nil {
		t.Fatal(err)
	}
	if a := acc(c, test); a < 95 {
		t.Errorf("logistic test accuracy = %.1f%%, want ≥95%%", a)
	}
}

func TestSGDSeparable(t *testing.T) {
	train := separable(400, 1)
	test := separable(200, 2)
	c := NewSGD(classify.Options{Seed: 3})
	if err := c.Train(train); err != nil {
		t.Fatal(err)
	}
	if a := acc(c, test); a < 93 {
		t.Errorf("sgd test accuracy = %.1f%%, want ≥93%%", a)
	}
}

func TestSGDRequiresBinaryClass(t *testing.T) {
	d := dataset.New("tri", 1, dataset.NewNumeric("x"), dataset.NewNominal("y", "a", "b", "c"))
	d.Add([]float64{1, 0})
	d.Add([]float64{2, 1})
	d.Add([]float64{3, 2})
	if err := NewSGD(classify.Options{}).Train(d); err == nil {
		t.Error("three-class data accepted by hinge-loss SGD")
	}
}

func TestLogisticMulticlass(t *testing.T) {
	// Three bands of x → three classes.
	d := dataset.New("tri", 1, dataset.NewNumeric("x"), dataset.NewNominal("y", "a", "b", "c"))
	r := classify.NewRNG(4)
	for i := 0; i < 500; i++ {
		x := r.Float64() * 9
		d.Add([]float64{x, float64(int(x / 3))})
	}
	c := NewLogistic(classify.Options{Seed: 5})
	if err := c.Train(d); err != nil {
		t.Fatal(err)
	}
	if a := acc(c, d); a < 85 {
		t.Errorf("multiclass training accuracy = %.1f%%", a)
	}
}

func TestEmptyTrainingSets(t *testing.T) {
	d := separable(5, 1).Empty()
	if err := NewLogistic(classify.Options{}).Train(d); err == nil {
		t.Error("logistic accepted empty data")
	}
	if err := NewSGD(classify.Options{}).Train(d); err == nil {
		t.Error("sgd accepted empty data")
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := separable(200, 1)
	a := NewSGD(classify.Options{Seed: 9})
	b := NewSGD(classify.Options{Seed: 9})
	a.Train(d)
	b.Train(d)
	for i, row := range d.X {
		if a.Predict(row) != b.Predict(row) {
			t.Fatalf("row %d predictions diverge for identical seeds", i)
		}
	}
}
