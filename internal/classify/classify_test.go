package classify

import (
	"math"
	"testing"
	"testing/quick"

	"jepo/internal/dataset"
)

func TestFPRounding(t *testing.T) {
	x := 0.1
	if Double.R(x) != x {
		t.Error("double mode must be identity")
	}
	if Single.R(x) == x {
		t.Error("single mode must round 0.1 through float32")
	}
	if Single.R(x) != float64(float32(x)) {
		t.Error("single mode must equal float32 round-trip")
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	r := NewRNG(0) // zero seed remapped, must not panic or stick
	if r.Next() == r.Next() {
		t.Error("rng stuck")
	}
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 3, 2}) != 1 {
		t.Error("argmax wrong")
	}
	if ArgMax([]float64{5, 5, 5}) != 0 {
		t.Error("tie must pick first")
	}
}

func encDataset() *dataset.Dataset {
	d := dataset.New("enc", 2,
		dataset.NewNumeric("x"),
		dataset.NewNominal("c", "a", "b", "c"),
		dataset.NewNominal("y", "n", "p"),
	)
	d.Add([]float64{1, 0, 0})
	d.Add([]float64{3, 1, 1})
	d.Add([]float64{5, 2, 0})
	return d
}

func TestEncoderLayout(t *testing.T) {
	d := encDataset()
	e := NewEncoder(d)
	if e.Dim() != 4 { // 1 numeric + 3 one-hot; class excluded
		t.Fatalf("dim = %d, want 4", e.Dim())
	}
	out := make([]float64, e.Dim())
	e.Encode(d.X[1], out)
	// Numeric standardized: mean 3, std sqrt(8/3).
	if math.Abs(out[0]) > 1e-9 {
		t.Errorf("standardized middle value = %v, want 0", out[0])
	}
	if out[1] != 0 || out[2] != 1 || out[3] != 0 {
		t.Errorf("one-hot = %v", out[1:])
	}
}

func TestEncoderHandlesConstantColumn(t *testing.T) {
	d := dataset.New("const", 1, dataset.NewNumeric("x"), dataset.NewNominal("y", "a", "b"))
	d.Add([]float64{2, 0})
	d.Add([]float64{2, 1})
	e := NewEncoder(d)
	out := make([]float64, e.Dim())
	e.Encode(d.X[0], out)
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Error("constant column produced non-finite feature")
	}
}

func TestEncodeAll(t *testing.T) {
	d := encDataset()
	e := NewEncoder(d)
	x, y := e.EncodeAll(d)
	if len(x) != 3 || len(y) != 3 {
		t.Fatal("shape wrong")
	}
	if y[0] != 0 || y[1] != 1 {
		t.Error("labels wrong")
	}
}

// Property: encoding never produces non-finite features for in-schema rows.
func TestEncoderFiniteProperty(t *testing.T) {
	d := encDataset()
	e := NewEncoder(d)
	f := func(x float64, nom uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		row := []float64{math.Mod(x, 1e6), float64(nom % 3), 0}
		out := make([]float64, e.Dim())
		e.Encode(row, out)
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
