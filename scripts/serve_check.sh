#!/bin/sh
# serve_check.sh is the daemon byte-identity gate: start jepod, drive a
# scripted session (create, upload the example corpus, analyze) plus a
# Table II regeneration over HTTP, and byte-diff both raw responses against
# the corresponding CLI stdout. The daemon is then stopped with SIGTERM and
# must drain to a zero exit. `make serve-check` and scripts/check.sh both
# call this script.
set -eu

cd "$(dirname "$0")/.."

addr=${JEPOD_ADDR:-127.0.0.1:17361}
base="http://$addr"
tmpdir=$(mktemp -d)
jepod_pid=
cleanup() {
    [ -n "$jepod_pid" ] && kill "$jepod_pid" 2>/dev/null
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "== jepod serve gate =="
# CLI references: the daemon must reproduce these byte for byte.
go run ./cmd/jepo analyze examples/java >"$tmpdir/analyze.cli" 2>/dev/null
go run ./cmd/wekaexp -table 2 >"$tmpdir/table2.cli" 2>/dev/null

go build -o "$tmpdir/jepod" ./cmd/jepod
"$tmpdir/jepod" -addr "$addr" 2>"$tmpdir/jepod.err" &
jepod_pid=$!

# Wait for the readiness line on stderr.
i=0
until grep -q "listening on" "$tmpdir/jepod.err" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "jepod did not become ready:" >&2
        cat "$tmpdir/jepod.err" >&2
        exit 1
    fi
    sleep 0.1
done

# Scripted session: create, upload the example file at its CLI path, analyze.
sid=$(curl -sf -X POST "$base/v1/sessions" | sed 's/.*"id":[[:space:]]*"\([^"]*\)".*/\1/')
if [ -z "$sid" ]; then
    echo "jepod session create returned no id" >&2
    exit 1
fi
curl -sf -X PUT --data-binary @examples/java/EnergyDemo.java \
    "$base/v1/sessions/$sid/files/examples/java/EnergyDemo.java"
curl -sf -X POST "$base/v1/sessions/$sid/analyze" >"$tmpdir/analyze.http"
if ! cmp -s "$tmpdir/analyze.cli" "$tmpdir/analyze.http"; then
    echo "jepod session analyze differs from jepo analyze stdout" >&2
    diff -u "$tmpdir/analyze.cli" "$tmpdir/analyze.http" >&2 || true
    exit 1
fi

# Table II over HTTP vs wekaexp -table 2.
curl -sf -X POST "$base/v1/tables/2" >"$tmpdir/table2.http"
if ! cmp -s "$tmpdir/table2.cli" "$tmpdir/table2.http"; then
    echo "jepod table 2 differs from wekaexp -table 2 stdout" >&2
    diff -u "$tmpdir/table2.cli" "$tmpdir/table2.http" >&2 || true
    exit 1
fi

# Graceful stop: SIGTERM must drain to a clean exit.
kill -TERM "$jepod_pid"
if ! wait "$jepod_pid"; then
    echo "jepod did not shut down cleanly on SIGTERM:" >&2
    cat "$tmpdir/jepod.err" >&2
    exit 1
fi
jepod_pid=

echo "serve gate OK"
