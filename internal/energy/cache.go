package energy

// Cache is a set-associative, write-allocate, LRU data-cache model. It is the
// mechanism behind the paper's array-traversal finding: row-major traversal
// of a two-dimensional array touches each 64-byte line 16 times (for 4-byte
// elements) while column-major traversal misses on almost every access.
//
// The implementation is the metering hot path's inner core, so its layout is
// chosen for the simulator's own cache behaviour, not for object-oriented
// tidiness: tags and LRU stamps live in two parallel slices (a way scan reads
// 8 consecutive tags from one line instead of striding over tag/stamp pairs),
// and the set index is a mask when the geometry allows it. None of this
// changes a single transition: the same lookups, stamp updates and evictions
// happen in the same order as the straightforward struct-of-pairs version.
type Cache struct {
	lineBits uint
	sets     int
	ways     int

	// setMask is sets-1 when sets is a power of two (every realistic
	// geometry, including the default 64-set L1D); pow2 selects between the
	// mask and the division. line&setMask == int(line)%sets for every
	// address the synthetic heap can produce, so the two paths are the same
	// function, not an approximation.
	setMask uint64
	pow2    bool

	tags    []uint64 // sets × ways; tag 0 = invalid (real tags offset by 1)
	stamps  []uint64 // LRU timestamps, parallel to tags
	lastWay []int32  // per-set way of the most recent hit/install
	clock   uint64

	hits, misses uint64
}

// CacheConfig describes a cache geometry.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size, power of two
	Ways      int // associativity
}

// DefaultCacheConfig is a 32 KiB, 8-way, 64-byte-line L1D — the geometry of
// the paper's i5-3317U testbed.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
}

// NewCache builds a cache with the given geometry. It panics on a geometry
// that is not a power-of-two line size or does not divide evenly into sets,
// since that is a programming error in the caller.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("energy: cache line size must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("energy: cache associativity must be positive")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets <= 0 || sets*cfg.Ways*cfg.LineBytes != cfg.SizeBytes {
		panic("energy: cache size must be sets × ways × line")
	}
	bits := uint(0)
	for 1<<bits < cfg.LineBytes {
		bits++
	}
	return &Cache{
		lineBits: bits,
		sets:     sets,
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		pow2:     sets&(sets-1) == 0,
		tags:     make([]uint64, sets*cfg.Ways),
		stamps:   make([]uint64, sets*cfg.Ways),
		lastWay:  make([]int32, sets),
	}
}

// Access simulates a load or store of size bytes at addr and reports how many
// lines it touched and how many of those missed. An access spanning a line
// boundary touches every line it covers.
func (c *Cache) Access(addr uint64, size int) (lines, missed int) {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineBits
	last := (addr + uint64(size) - 1) >> c.lineBits
	if first == last { // common case: the access fits in one line
		if c.touch(first) {
			return 1, 0
		}
		return 1, 1
	}
	for line := first; ; line++ {
		lines++
		if !c.touch(line) {
			missed++
		}
		if line == last {
			break
		}
	}
	return lines, missed
}

// AccessRun simulates count accesses of size bytes at base, base+stride,
// base+2·stride, … in one tight loop, performing exactly the per-access
// transitions of count individual Access calls — same lookups, same stamp
// updates, same evictions, in the same order — and reporting the summed line
// and miss totals. Like the per-set lastWay memo it is self-validating: every
// access re-checks the tag, so the batched loop cannot drift from the
// unbatched sequence. Accesses that span a line boundary take the same
// multi-line walk Access takes.
func (c *Cache) AccessRun(base, stride uint64, count, size int) (lines, missed int) {
	span := uint64(size)
	if size <= 0 {
		span = 1
	}
	addr := base
	for k := 0; k < count; k++ {
		first := addr >> c.lineBits
		if (addr+span-1)>>c.lineBits == first {
			lines++
			if !c.touch(first) {
				missed++
			}
		} else {
			l, m := c.Access(addr, size)
			lines += l
			missed += m
		}
		addr += stride
	}
	return lines, missed
}

// setOf maps a line to its set index: a mask for power-of-two set counts,
// the modulus otherwise. Both compute int(line) % c.sets for the
// non-negative line numbers the synthetic heap produces.
func (c *Cache) setOf(line uint64) int {
	if c.pow2 {
		return int(line & c.setMask)
	}
	return int(line) % c.sets
}

// touch looks up one line, installing it on a miss, and reports a hit.
//
// The per-set lastWay memo short-circuits the way scan when a set's most
// recently touched line is touched again — the dominant pattern for
// sequential traversals, where 16 consecutive 4-byte accesses share a line.
// The memo is self-validating (the tag is re-checked), and the fast path
// performs exactly the state transitions the full scan would on that hit, so
// hit/miss counts, stamps and evictions are bit-identical with or without it.
func (c *Cache) touch(line uint64) bool {
	// Tag 0 marks an invalid way; offset real tags by 1 so line 0 is valid.
	tag := line + 1
	set := c.setOf(line)
	base := set * c.ways
	c.clock++
	if i := base + int(c.lastWay[set]); c.tags[i] == tag {
		c.stamps[i] = c.clock
		c.hits++
		return true
	}
	// Subslice the set's ways once so the scan below runs with the bounds
	// checks hoisted out of the loop; the traversal rows spend a quarter of
	// their VM time here on all-miss scans.
	tags := c.tags[base : base+c.ways]
	stamps := c.stamps[base : base+c.ways : base+c.ways]
	if c.ways == 8 {
		// Fixed-size views of the default 8-way geometry: constant trip
		// count and no bounds checks, same scan in the same order.
		t8 := (*[8]uint64)(tags)
		s8 := (*[8]uint64)(stamps)
		victim, oldest := 0, s8[0]
		for w := 0; w < 8; w++ {
			if t8[w] == tag {
				s8[w] = c.clock
				c.hits++
				c.lastWay[set] = int32(w)
				return true
			}
			if s8[w] < oldest {
				victim, oldest = w, s8[w]
			}
		}
		t8[victim] = tag
		s8[victim] = c.clock
		c.misses++
		c.lastWay[set] = int32(victim)
		return false
	}
	victim, oldest := 0, stamps[0]
	for w, t := range tags {
		if t == tag {
			stamps[w] = c.clock
			c.lastWay[set] = int32(w)
			c.hits++
			return true
		}
		if stamps[w] < oldest {
			victim, oldest = w, stamps[w]
		}
	}
	tags[victim] = tag
	stamps[victim] = c.clock
	c.misses++
	c.lastWay[set] = int32(victim)
	return false
}

// Hits reports the number of line hits since construction or Reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses reports the number of line misses since construction or Reset.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset invalidates every line and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	for i := range c.lastWay {
		c.lastWay[i] = 0
	}
	c.clock = 0
	c.hits = 0
	c.misses = 0
}
