package ast

// This file adds a mutating counterpart to Inspect: a cursor-driven rewrite
// traversal in the spirit of golang.org/x/tools/go/ast/astutil.Apply, written
// by hand for the mini-Java node set (no reflection — the interpreter's hot
// paths share these nodes and must stay allocation-predictable).
//
// Rewrite visits every node in the same order as Inspect. At each node the
// pre hook runs first and may replace, delete, or insert around the node via
// the Cursor; if pre returns true the traversal then descends into the
// *current* occupant of the slot (i.e. into a replacement, not the original),
// and finally the post hook runs. Nodes inserted with InsertBefore are not
// themselves traversed; nodes inserted with InsertAfter are reached when the
// sweep arrives at them, because statement slices re-read their length on
// every step — a hook may splice the parent slice directly and the traversal
// stays consistent.

// Cursor describes the node currently being visited and its edge from the
// parent, and carries the mutation operations.
type Cursor struct {
	node   Node
	parent Node   // enclosing node; nil at the root
	name   string // field name in the parent ("Stmts", "Cond", ...)

	// For nodes held in a statement slice: the slice and index; otherwise
	// slice is nil and set writes the single field slot.
	slice *[]Stmt
	index int
	set   func(Node) // writes the single-slot field; nil for slices
}

// Node returns the node the cursor currently points at.
func (c *Cursor) Node() Node { return c.node }

// Parent returns the enclosing node (nil at the traversal root).
func (c *Cursor) Parent() Node { return c.parent }

// Name returns the field name of the parent holding this node.
func (c *Cursor) Name() string { return c.name }

// Index returns the node's index in the parent's statement slice, or -1 when
// the node does not sit in one.
func (c *Cursor) Index() int {
	if c.slice == nil {
		return -1
	}
	return c.index
}

// InSlice reports whether the node sits in a statement slice, where Delete,
// InsertBefore and InsertAfter are legal.
func (c *Cursor) InSlice() bool { return c.slice != nil }

// Replace swaps the current node for n. When pre returns true afterwards, the
// traversal descends into n's children (n itself is not re-visited).
func (c *Cursor) Replace(n Node) {
	if c.slice != nil {
		(*c.slice)[c.index] = n.(Stmt)
	} else if c.set != nil {
		c.set(n)
	} else {
		panic("ast: Replace at the traversal root")
	}
	c.node = n
}

// Delete removes the current node from its statement slice. The traversal
// does not descend into the deleted node.
func (c *Cursor) Delete() {
	if c.slice == nil {
		panic("ast: Delete outside a statement slice")
	}
	s := *c.slice
	copy(s[c.index:], s[c.index+1:])
	*c.slice = s[:len(s)-1]
	c.node = nil
}

// InsertBefore inserts stmt before the current node. Inserted nodes are not
// traversed (the sweep is already past their position).
func (c *Cursor) InsertBefore(stmt Stmt) {
	if c.slice == nil {
		panic("ast: InsertBefore outside a statement slice")
	}
	s := *c.slice
	s = append(s, nil)
	copy(s[c.index+1:], s[c.index:])
	s[c.index] = stmt
	*c.slice = s
	c.index++
}

// InsertAfter inserts stmt after the current node. The sweep reaches it when
// the slice iteration arrives at its position.
func (c *Cursor) InsertAfter(stmt Stmt) {
	if c.slice == nil {
		panic("ast: InsertAfter outside a statement slice")
	}
	s := *c.slice
	s = append(s, nil)
	copy(s[c.index+2:], s[c.index+1:])
	s[c.index+1] = stmt
	*c.slice = s
}

// RewriteHook is a traversal hook. Returning false from pre skips the node's
// children; returning false from post aborts the whole traversal.
type RewriteHook func(*Cursor) bool

// rewriter carries the hooks plus the abort flag.
type rewriteState struct {
	pre, post RewriteHook
	done      bool
}

// Rewrite traverses the tree rooted at n (a statement or expression),
// applying pre and post at every node. Either hook may be nil. The root node
// itself cannot be replaced (it has no parent slot); wrap it in a Block to
// rewrite at the top level.
func Rewrite(n Node, pre, post RewriteHook) {
	rs := &rewriteState{pre: pre, post: post}
	c := &Cursor{node: n}
	rs.visit(c)
}

// RewriteFile applies the hooks over every field initializer and method body
// of the file, mirroring InspectFile.
func RewriteFile(file *File, pre, post RewriteHook) {
	rs := &rewriteState{pre: pre, post: post}
	for _, cl := range file.Classes {
		for _, fd := range cl.Fields {
			if rs.done {
				return
			}
			if fd.Init != nil {
				fd := fd
				rs.visit(&Cursor{node: fd.Init, name: "Init",
					set: func(n Node) { fd.Init = n.(Expr) }})
			}
		}
		for _, m := range cl.Methods {
			if rs.done {
				return
			}
			if m.Body != nil {
				rs.visit(&Cursor{node: m.Body, name: "Body"})
			}
		}
	}
}

// visit runs pre, descends into the current slot value, then runs post.
func (rs *rewriteState) visit(c *Cursor) {
	if rs.done || c.node == nil {
		return
	}
	if rs.pre != nil && !rs.pre(c) {
		rs.runPost(c)
		return
	}
	if c.node != nil { // pre may have deleted the node
		rs.children(c.node)
	}
	rs.runPost(c)
}

func (rs *rewriteState) runPost(c *Cursor) {
	if rs.done || rs.post == nil || c.node == nil {
		return
	}
	if !rs.post(c) {
		rs.done = true
	}
}

// expr visits a single-slot expression child.
func (rs *rewriteState) expr(parent Node, name string, e Expr, set func(Expr)) {
	if e == nil || rs.done {
		return
	}
	rs.visit(&Cursor{node: e, parent: parent, name: name,
		set: func(n Node) { set(n.(Expr)) }})
}

// stmtSlot visits a single-slot statement child (If.Then, For.Body, ...).
func (rs *rewriteState) stmtSlot(parent Node, name string, s Stmt, set func(Stmt)) {
	if s == nil || rs.done {
		return
	}
	rs.visit(&Cursor{node: s, parent: parent, name: name,
		set: func(n Node) { set(n.(Stmt)) }})
}

// stmts sweeps a statement slice, re-reading the length each step so hooks
// may splice the slice mid-sweep.
func (rs *rewriteState) stmts(parent Node, name string, slice *[]Stmt) {
	for i := 0; i < len(*slice); i++ {
		if rs.done {
			return
		}
		c := &Cursor{node: (*slice)[i], parent: parent, name: name,
			slice: slice, index: i}
		rs.visit(c)
		i = c.index // InsertBefore advances the index past inserted nodes
		if c.node == nil {
			i-- // Delete: re-examine the slot that shifted in
		}
	}
}

// children dispatches into the node's child slots.
func (rs *rewriteState) children(node Node) {
	switch n := node.(type) {
	case *Block:
		rs.stmts(n, "Stmts", &n.Stmts)
	case *LocalVar:
		rs.expr(n, "Init", n.Init, func(e Expr) { n.Init = e })
	case *ExprStmt:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
	case *If:
		rs.expr(n, "Cond", n.Cond, func(e Expr) { n.Cond = e })
		rs.stmtSlot(n, "Then", n.Then, func(s Stmt) { n.Then = s })
		rs.stmtSlot(n, "Else", n.Else, func(s Stmt) { n.Else = s })
	case *While:
		rs.expr(n, "Cond", n.Cond, func(e Expr) { n.Cond = e })
		rs.stmtSlot(n, "Body", n.Body, func(s Stmt) { n.Body = s })
	case *DoWhile:
		rs.stmtSlot(n, "Body", n.Body, func(s Stmt) { n.Body = s })
		rs.expr(n, "Cond", n.Cond, func(e Expr) { n.Cond = e })
	case *Switch:
		rs.expr(n, "Tag", n.Tag, func(e Expr) { n.Tag = e })
		for ci := range n.Cases {
			cs := &n.Cases[ci]
			for vi := range cs.Values {
				vi := vi
				rs.expr(n, "Values", cs.Values[vi], func(e Expr) { cs.Values[vi] = e })
			}
			rs.stmts(n, "Stmts", &cs.Stmts)
		}
	case *For:
		rs.stmtSlot(n, "Init", n.Init, func(s Stmt) { n.Init = s })
		rs.expr(n, "Cond", n.Cond, func(e Expr) { n.Cond = e })
		for i := range n.Post {
			i := i
			rs.expr(n, "Post", n.Post[i], func(e Expr) { n.Post[i] = e })
		}
		rs.stmtSlot(n, "Body", n.Body, func(s Stmt) { n.Body = s })
	case *Return:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
	case *Throw:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
	case *Try:
		rs.stmtSlot(n, "Block", n.Block, func(s Stmt) { n.Block = s.(*Block) })
		for i := range n.Catches {
			ct := &n.Catches[i]
			rs.stmtSlot(n, "Catch", ct.Block, func(s Stmt) { ct.Block = s.(*Block) })
		}
		if n.Finally != nil {
			rs.stmtSlot(n, "Finally", n.Finally, func(s Stmt) { n.Finally = s.(*Block) })
		}
	case *Select:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
	case *Index:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
		rs.expr(n, "I", n.I, func(e Expr) { n.I = e })
	case *Call:
		rs.expr(n, "Recv", n.Recv, func(e Expr) { n.Recv = e })
		for i := range n.Args {
			i := i
			rs.expr(n, "Args", n.Args[i], func(e Expr) { n.Args[i] = e })
		}
	case *New:
		for i := range n.Args {
			i := i
			rs.expr(n, "Args", n.Args[i], func(e Expr) { n.Args[i] = e })
		}
	case *NewArray:
		for i := range n.Lens {
			i := i
			rs.expr(n, "Lens", n.Lens[i], func(e Expr) { n.Lens[i] = e })
		}
	case *ArrayLit:
		for i := range n.Elems {
			i := i
			rs.expr(n, "Elems", n.Elems[i], func(e Expr) { n.Elems[i] = e })
		}
	case *Unary:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
	case *Binary:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
		rs.expr(n, "Y", n.Y, func(e Expr) { n.Y = e })
	case *Assign:
		rs.expr(n, "LHS", n.LHS, func(e Expr) { n.LHS = e })
		rs.expr(n, "RHS", n.RHS, func(e Expr) { n.RHS = e })
	case *Ternary:
		rs.expr(n, "Cond", n.Cond, func(e Expr) { n.Cond = e })
		rs.expr(n, "Then", n.Then, func(e Expr) { n.Then = e })
		rs.expr(n, "Else", n.Else, func(e Expr) { n.Else = e })
	case *Cast:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
	case *InstanceOf:
		rs.expr(n, "X", n.X, func(e Expr) { n.X = e })
	case *Literal, *Ident, *This, *Break, *Continue, *Empty:
		// leaves
	}
}
