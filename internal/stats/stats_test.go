package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMedianStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Median(xs) != 4.5 {
		t.Errorf("median = %v", Median(xs))
	}
	if math.Abs(StdDev(xs)-2.138089935299395) > 1e-12 {
		t.Errorf("std = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs must be 0")
	}
}

func TestQuartilesTukeyHinges(t *testing.T) {
	// Odd length: hinges include the median in both halves, so for 1..7 the
	// lower half is [1,2,3,4] with median 2.5 and the upper [4,5,6,7] → 5.5.
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	q1, q3, err := Quartiles(xs)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != 2.5 || q3 != 5.5 {
		t.Errorf("hinges = %v, %v, want 2.5, 5.5", q1, q3)
	}
	// Even length.
	q1, q3, _ = Quartiles([]float64{1, 2, 3, 4})
	if q1 != 1.5 || q3 != 3.5 {
		t.Errorf("even hinges = %v, %v, want 1.5, 3.5", q1, q3)
	}
	if _, _, err := Quartiles([]float64{1, 2}); err == nil {
		t.Error("too-short input accepted")
	}
}

func TestOutlierDetection(t *testing.T) {
	xs := []float64{10, 11, 9, 10, 12, 10, 11, 9, 10, 100}
	idx, err := OutlierIndices(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 9 {
		t.Errorf("outliers = %v, want [9]", idx)
	}
	clean := []float64{10, 11, 9, 10, 12}
	idx, _ = OutlierIndices(clean)
	if len(idx) != 0 {
		t.Errorf("clean data flagged: %v", idx)
	}
}

func TestProtocolReplacesOutliers(t *testing.T) {
	// The measurement source yields a spike on the third call and stable
	// values otherwise; the protocol must converge to ≈10.
	calls := 0
	measure := func() float64 {
		calls++
		if calls == 3 {
			return 500
		}
		return 10 + float64(calls%3)*0.1
	}
	p := DefaultProtocol()
	mean, xs, err := p.Measure(measure)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 10 {
		t.Fatalf("kept %d samples", len(xs))
	}
	if mean < 9 || mean > 11 {
		t.Errorf("protocol mean = %v, want ≈10 after outlier replacement", mean)
	}
	if calls <= 10 {
		t.Error("no replacement measurements were taken")
	}
	sort.Float64s(xs)
	if xs[len(xs)-1] > 50 {
		t.Error("outlier survived the protocol")
	}
}

func TestProtocolErrors(t *testing.T) {
	p := Protocol{Runs: 2, MaxRounds: 1}
	if _, _, err := p.Measure(func() float64 { return 1 }); err == nil {
		t.Error("runs<3 accepted")
	}
}

func TestProtocolTerminatesOnPathologicalSource(t *testing.T) {
	// Alternating extreme values never converge; MaxRounds must bound work.
	i := 0
	p := Protocol{Runs: 5, MaxRounds: 3}
	_, xs, err := p.Measure(func() float64 {
		i++
		if i%2 == 0 {
			return 1e9
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 5 {
		t.Errorf("kept %d samples", len(xs))
	}
}

func TestImprovement(t *testing.T) {
	if math.Abs(Improvement(100, 85.54)-14.46) > 1e-9 {
		t.Errorf("improvement = %v", Improvement(100, 85.54))
	}
	if Improvement(0, 5) != 0 {
		t.Error("zero baseline must yield 0")
	}
	if Improvement(100, 110) != -10 {
		t.Error("regressions must be negative")
	}
}

// Property: the fences always contain the median, and scaling the data scales
// the fences.
func TestFencesContainMedianProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			xs[i] = math.Mod(v, 1000)
		}
		lo, hi, err := TukeyFences(xs)
		if err != nil {
			return false
		}
		med := Median(xs)
		return lo <= med && med <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
